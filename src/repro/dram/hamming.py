"""Bit-level Hamming SEC-DED (72, 64) codec.

:mod:`repro.dram.ecc` models on-die ECC positionally (which flips survive
correction); this module implements the actual code underneath that model:
a (72, 64) single-error-correcting, double-error-detecting extended
Hamming code, the construction on-die and rank-level DRAM ECC schemes use.

Construction: 7 Hamming check bits (syndrome = XOR of the indices of set
bits in a 71-position layout) plus one overall parity bit for double-error
detection.  Encoding, decoding and the correction/detection/miscorrection
behaviour are fully implemented and property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Tuple

from repro.errors import ConfigError

DATA_BITS = 64
HAMMING_CHECK_BITS = 7
#: Total codeword bits: 64 data + 7 Hamming checks + 1 overall parity.
CODEWORD_LENGTH = DATA_BITS + HAMMING_CHECK_BITS + 1

#: Positions 1..71 of the Hamming layout: powers of two are check bits.
_CHECK_POSITIONS = tuple(1 << i for i in range(HAMMING_CHECK_BITS))
_DATA_POSITIONS = tuple(p for p in range(1, DATA_BITS + HAMMING_CHECK_BITS + 1)
                        if p not in _CHECK_POSITIONS)
assert len(_DATA_POSITIONS) == DATA_BITS


class DecodeStatus(Enum):
    """Outcome classes of a SEC-DED decode."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DOUBLE_DETECTED = "double-detected"
    UNCORRECTABLE = "uncorrectable"


@dataclass(frozen=True)
class DecodeResult:
    """Decoded data word plus what the decoder concluded."""

    data: int
    status: DecodeStatus
    corrected_position: int = -1   # Hamming layout position, if corrected


def _check_data(data: int) -> None:
    if not 0 <= data < (1 << DATA_BITS):
        raise ConfigError(f"data must be a {DATA_BITS}-bit value")


def _layout_from_data(data: int) -> List[int]:
    """Place data bits into the 1-indexed Hamming layout (checks zeroed)."""
    layout = [0] * (DATA_BITS + HAMMING_CHECK_BITS + 1)  # index 0 unused
    for i, position in enumerate(_DATA_POSITIONS):
        layout[position] = (data >> i) & 1
    return layout


def _syndrome(layout: List[int]) -> int:
    syndrome = 0
    for position in range(1, len(layout)):
        if layout[position]:
            syndrome ^= position
    return syndrome


def encode(data: int) -> int:
    """Encode a 64-bit word into a 72-bit codeword.

    Bit layout of the returned integer: bits [0, 70] are the Hamming
    layout positions 1..71 (data interleaved with check bits), bit 71 is
    the overall parity.
    """
    _check_data(data)
    layout = _layout_from_data(data)
    syndrome = _syndrome(layout)
    for i, position in enumerate(_CHECK_POSITIONS):
        layout[position] = (syndrome >> i) & 1
    codeword = 0
    ones = 0
    for position in range(1, len(layout)):
        if layout[position]:
            codeword |= 1 << (position - 1)
            ones ^= 1
    codeword |= ones << (CODEWORD_LENGTH - 1)   # overall even parity
    return codeword


def _extract_data(layout: List[int]) -> int:
    data = 0
    for i, position in enumerate(_DATA_POSITIONS):
        data |= layout[position] << i
    return data


def decode(codeword: int) -> DecodeResult:
    """Decode a 72-bit codeword with SEC-DED semantics.

    * zero syndrome, parity ok        -> CLEAN
    * nonzero syndrome, parity odd    -> single error, CORRECTED
      (a syndrome pointing past the layout means the error is marked
      UNCORRECTABLE rather than silently miscorrected)
    * nonzero syndrome, parity ok     -> DOUBLE_DETECTED (not corrected)
    * zero syndrome, parity odd       -> parity bit itself flipped: CLEAN
      data, CORRECTED status on the parity position (0).
    """
    if not 0 <= codeword < (1 << CODEWORD_LENGTH):
        raise ConfigError(f"codeword must be a {CODEWORD_LENGTH}-bit value")
    layout = [0] * (DATA_BITS + HAMMING_CHECK_BITS + 1)
    ones = 0
    for position in range(1, len(layout)):
        bit = (codeword >> (position - 1)) & 1
        layout[position] = bit
        ones ^= bit
    stored_parity = (codeword >> (CODEWORD_LENGTH - 1)) & 1
    parity_ok = (ones == stored_parity)
    syndrome = _syndrome(layout)

    if syndrome == 0:
        if parity_ok:
            return DecodeResult(_extract_data(layout), DecodeStatus.CLEAN)
        # The overall parity bit itself flipped.
        return DecodeResult(_extract_data(layout), DecodeStatus.CORRECTED,
                            corrected_position=0)
    if parity_ok:
        # Even number of errors with a nonzero syndrome: double error.
        return DecodeResult(_extract_data(layout),
                            DecodeStatus.DOUBLE_DETECTED)
    if syndrome >= len(layout):
        return DecodeResult(_extract_data(layout),
                            DecodeStatus.UNCORRECTABLE)
    layout[syndrome] ^= 1
    return DecodeResult(_extract_data(layout), DecodeStatus.CORRECTED,
                        corrected_position=syndrome)


def flip_bits(codeword: int, positions: Tuple[int, ...]) -> int:
    """Flip codeword bits (0-indexed over the 72-bit word) — error injection."""
    for position in positions:
        if not 0 <= position < CODEWORD_LENGTH:
            raise ConfigError(f"bit position {position} out of range")
        codeword ^= 1 << position
    return codeword
