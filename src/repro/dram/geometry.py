"""DRAM geometry: the dimensional layout of a module under test.

Mirrors the hierarchy of Fig. 1 in the paper: a module has ranks of chips
operating in lock-step; each chip has banks; each bank is a 2-D array of
rows and columns partitioned into subarrays of (typically) 512 rows.

The characterization infrastructure addresses DRAM at *module* granularity
(a column access touches the same (bank, row, column) in every chip), so the
geometry carries both the per-chip dimensions and the chip count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import GeometryError


@dataclass(frozen=True)
class Geometry:
    """Dimensions of a DRAM module under test.

    Attributes:
        banks: number of banks per chip (all chips identical).
        rows_per_bank: addressable rows in a bank.
        cols_per_row: column addresses per row (per chip).
        bits_per_col: device data width per column access (x4 -> 4, x8 -> 8).
        chips: chips operating in lock-step in the tested rank.
        subarray_rows: rows per subarray (paper conservatively assumes 512).
    """

    banks: int = 4
    rows_per_bank: int = 65536
    cols_per_row: int = 1024
    bits_per_col: int = 8
    chips: int = 8
    subarray_rows: int = 512

    def __post_init__(self) -> None:
        for field in ("banks", "rows_per_bank", "cols_per_row", "bits_per_col",
                      "chips", "subarray_rows"):
            value = getattr(self, field)
            if not isinstance(value, int) or value <= 0:
                raise GeometryError(
                    f"{field} must be a positive integer, got {value!r}")
        if self.subarray_rows > self.rows_per_bank:
            raise GeometryError(
                f"subarray_rows ({self.subarray_rows}) cannot exceed "
                f"rows_per_bank ({self.rows_per_bank})"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def subarrays_per_bank(self) -> int:
        """Number of (possibly ragged) subarrays per bank."""
        return -(-self.rows_per_bank // self.subarray_rows)

    @property
    def row_bits(self) -> int:
        """Bits of data stored in one module row (all chips)."""
        return self.cols_per_row * self.bits_per_col * self.chips

    @property
    def row_bytes(self) -> int:
        """Bytes per module row (all chips)."""
        return self.row_bits // 8

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def check_bank(self, bank: int) -> None:
        if not 0 <= bank < self.banks:
            raise GeometryError(f"bank {bank} out of range [0, {self.banks})")

    def check_row(self, row: int) -> None:
        if not 0 <= row < self.rows_per_bank:
            raise GeometryError(f"row {row} out of range [0, {self.rows_per_bank})")

    def check_col(self, col: int) -> None:
        if not 0 <= col < self.cols_per_row:
            raise GeometryError(f"column {col} out of range [0, {self.cols_per_row})")

    def subarray_of(self, row: int) -> int:
        """Index of the subarray containing ``row``."""
        self.check_row(row)
        return row // self.subarray_rows

    def rows_of_subarray(self, subarray: int) -> range:
        """Row range belonging to ``subarray``."""
        if not 0 <= subarray < self.subarrays_per_bank:
            raise GeometryError(
                f"subarray {subarray} out of range [0, {self.subarrays_per_bank})"
            )
        start = subarray * self.subarray_rows
        stop = min(start + self.subarray_rows, self.rows_per_bank)
        return range(start, stop)

    def neighbors(self, row: int, max_distance: int = 2):
        """Yield ``(neighbor_row, distance)`` pairs within the bank.

        ``distance`` is signed: negative for rows below, positive for rows
        above.  Rows past the bank edge are skipped (edge rows have fewer
        neighbors, exactly as on a real die).
        """
        self.check_row(row)
        for distance in range(-max_distance, max_distance + 1):
            if distance == 0:
                continue
            neighbor = row + distance
            if 0 <= neighbor < self.rows_per_bank:
                yield neighbor, distance

    def scaled(self, **overrides: int) -> "Geometry":
        """Return a copy with some dimensions overridden (for fast tests)."""
        return replace(self, **overrides)


#: Reduced geometry used by unit tests and quick examples: small enough to
#: enumerate exhaustively, large enough to contain several subarrays.
TINY = Geometry(banks=1, rows_per_bank=2048, cols_per_row=128, bits_per_col=8,
                chips=2, subarray_rows=512)
