"""On-die Target Row Refresh (TRR) model.

Modern DDR4 devices ship a proprietary in-DRAM mitigation that samples
aggressor activations and, piggybacking on REF commands, refreshes the
sampled aggressors' neighbors (Section 2.3).  The paper *disables* TRR
during characterization by never issuing REF; we model a representative
sampler-based TRR so that

* the characterization path demonstrably sees raw circuit-level flips, and
* the defense benches can re-enable it and measure its (in)effectiveness
  against many-sided patterns, as TRRespass showed.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, TYPE_CHECKING

from repro.rng import SeedSequenceTree

if TYPE_CHECKING:  # pragma: no cover
    from repro.dram.module import DRAMModule


class TargetRowRefresh:
    """Counter-sampling TRR: tracks a few aggressors per bank, refreshes
    their neighbors on REF.

    Attributes:
        table_size: aggressor rows tracked per bank (vendors use 1-4ish).
        sample_probability: probability an activation is considered for
            tracking (models the lossy sampling real TRRs employ).
        neighborhood: rows refreshed on each side of a tracked aggressor.
    """

    def __init__(self, tree: SeedSequenceTree, table_size: int = 4,
                 sample_probability: float = 0.20,
                 neighborhood: int = 1) -> None:
        self.table_size = table_size
        self.sample_probability = sample_probability
        self.neighborhood = neighborhood
        self._gen = tree.generator("trr")
        self._tables: Dict[int, Counter] = {}
        self.refreshes_issued = 0

    # ------------------------------------------------------------------
    def on_activate(self, bank: int, physical_row: int) -> None:
        """Observe one activation (called by the module on every ACT)."""
        if self._gen.random() >= self.sample_probability:
            return
        table = self._tables.setdefault(bank, Counter())
        if physical_row in table or len(table) < self.table_size:
            table[physical_row] += 1
            return
        # Table full: decrement-all (Misra-Gries style eviction).
        for row in list(table):
            table[row] -= 1
            if table[row] <= 0:
                del table[row]

    def on_activate_bulk(self, bank: int, physical_row: int, count: int) -> None:
        """Observe ``count`` activations of the same row at once.

        Used by the controller's native hammer loops: the number of sampled
        activations is drawn binomially, which is distribution-identical to
        sampling each activation independently.
        """
        if count <= 0:
            return
        sampled = int(self._gen.binomial(count, self.sample_probability))
        if sampled == 0:
            return
        table = self._tables.setdefault(bank, Counter())
        if physical_row in table or len(table) < self.table_size:
            table[physical_row] += sampled
            return
        for row in list(table):
            table[row] -= sampled
            if table[row] <= 0:
                del table[row]

    def victims_of(self, physical_row: int, rows_per_bank: int) -> List[int]:
        victims = []
        for distance in range(1, self.neighborhood + 1):
            for victim in (physical_row - distance, physical_row + distance):
                if 0 <= victim < rows_per_bank:
                    victims.append(victim)
        return victims

    def on_refresh(self, module: "DRAMModule") -> int:
        """Refresh the neighbors of the hottest tracked aggressors.

        Returns the number of victim-row refreshes issued.
        """
        issued = 0
        for bank, table in self._tables.items():
            if not table:
                continue
            (aggressor, _count), = table.most_common(1)
            victims = self.victims_of(aggressor, module.geometry.rows_per_bank)
            module.refresh_rows(bank, victims)
            issued += len(victims)
            del table[aggressor]
        self.refreshes_issued += issued
        return issued

    def reset(self) -> None:
        self._tables.clear()
        self.refreshes_issued = 0
