"""JEDEC command timing parameters for DDR3 and DDR4 devices.

The paper manipulates two timings (Section 2.2 / Fig. 6):

* ``tRAS`` — minimum time a row must stay active before precharge; the
  *Aggressor On* tests extend the actual active time (``tAggOn``) beyond it.
* ``tRP`` — minimum precharge-to-activate time; the *Aggressor Off* tests
  extend the actual precharged time (``tAggOff``) beyond it.

A :class:`TimingSet` is a value object; the SoftMC controller enforces the
*minimum* constraints and permits arbitrarily longer intervals, matching the
FPGA infrastructure's 1.25 ns (DDR4) / 2.5 ns (DDR3) command granularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import TREFW_MS, ms_to_ns


@dataclass(frozen=True)
class TimingSet:
    """Minimum command-to-command timings, all in nanoseconds.

    Attributes:
        name: human-readable standard name (e.g. ``"DDR4-2400"``).
        clock_ns: command granularity of the testing infrastructure.
        tRCD: ACT -> first RD/WR to the same bank.
        tRAS: ACT -> PRE to the same bank.
        tRP: PRE -> next ACT to the same bank.
        tCCD: column command to column command (same bank group).
        tWR: end of write burst -> PRE.
        tRFC: REF -> next command.
        tREFI: nominal average interval between REF commands.
        burst_ns: duration of one read/write burst on the data bus.
        tRRD: ACT -> ACT to *different* banks of the same rank.
        tFAW: rolling window admitting at most four ACTs per rank (the
            rank-level power constraint bounding multi-bank hammer rates).
    """

    name: str
    clock_ns: float
    tRCD: float
    tRAS: float
    tRP: float
    tCCD: float
    tWR: float
    tRFC: float
    tREFI: float
    burst_ns: float
    tRRD: float = 6.0
    tFAW: float = 30.0

    def __post_init__(self) -> None:
        for field in ("clock_ns", "tRCD", "tRAS", "tRP", "tCCD", "tWR",
                      "tRFC", "tREFI", "burst_ns", "tRRD", "tFAW"):
            if getattr(self, field) <= 0:
                raise ConfigError(f"timing {field} must be positive in {self.name}")

    @property
    def tRC(self) -> float:
        """Minimum activate-to-activate time to the same bank (tRAS + tRP)."""
        return self.tRAS + self.tRP

    def quantize(self, interval_ns: float) -> float:
        """Round ``interval_ns`` up to the controller's command granularity."""
        steps = math.ceil(interval_ns / self.clock_ns - 1e-9)
        return steps * self.clock_ns

    def hammers_per_refresh_window(
            self, trefw_ns: float = ms_to_ns(TREFW_MS)) -> int:
        """Max double-sided hammers (2 activations each) in one tREFW."""
        return int(trefw_ns // (2.0 * self.tRC))


#: DDR4-2400 timings as used on the paper's Alveo U200 SoftMC setup.
#: tRAS = 34.5 ns and tRP = 16.5 ns are the paper's stated baselines
#: (Section 6).  The paper quotes a 1.25 ns command granularity, but every
#: timing it programs (34.5, 64.5, ..., 154.5; 16.5, 22.5, ..., 40.5) is a
#: multiple of 1.5 ns, which we adopt as the kernel granularity so that the
#: nominal operating points are exactly representable.
DDR4_2400 = TimingSet(
    name="DDR4-2400",
    clock_ns=1.5,
    tRCD=13.5,
    tRAS=34.5,
    tRP=16.5,
    tCCD=4.5,
    tWR=15.0,
    tRFC=351.0,
    tREFI=7800.0,
    burst_ns=3.0,
)

#: DDR3-1600 timings for the ML605 SODIMM setup (2.5 ns granularity).
DDR3_1600 = TimingSet(
    name="DDR3-1600",
    clock_ns=2.5,
    tRCD=12.5,
    tRAS=35.0,
    tRP=15.0,
    tCCD=5.0,
    tWR=15.0,
    tRFC=260.0,
    tREFI=7800.0,
    burst_ns=5.0,
)

TIMING_SETS = {ts.name: ts for ts in (DDR4_2400, DDR3_1600)}


def timing_for_standard(standard: str) -> TimingSet:
    """Look up the timing set for a DDR standard string ("DDR3"/"DDR4")."""
    if standard.upper().startswith("DDR4"):
        return DDR4_2400
    if standard.upper().startswith("DDR3"):
        return DDR3_1600
    raise ConfigError(f"unknown DRAM standard: {standard!r}")
