"""Data patterns used by the characterization (Table 1 of the paper).

The paper fills the victim row ``V`` and its 8 physically-adjacent rows on
each side with one of seven patterns: *colstripe*, *checkered*, *rowstripe*
(plus the complements of these three) and *random*.  Patterns are defined by
the byte written as a function of the row's distance-parity from the victim:

======================  ==================  =================
Pattern                 V +/- even rows     V +/- odd rows
======================  ==================  =================
colstripe               0x55                0x55
checkered               0x55                0xaa
rowstripe               0x00                0xff
random                  per-row random      per-row random
======================  ==================  =================

A :class:`DataPattern` answers "what bit value does cell *(row, col, bit)*
hold when this pattern is installed around victim ``V``?", which is all the
fault model needs to decide whether a vulnerable cell's charged state is
exposed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro import rng as rng_mod
from repro.errors import ConfigError


@dataclass(frozen=True)
class DataPattern:
    """One of the seven characterization data patterns.

    Attributes:
        name: canonical pattern name (see :data:`PATTERNS`).
        even_byte: byte stored in rows at an even distance from the victim
            (including the victim itself); ``None`` for random patterns.
        odd_byte: byte stored in rows at odd distance; ``None`` for random.
        random_seed_label: label mixed into the RNG path for random fills.
    """

    name: str
    even_byte: Optional[int]
    odd_byte: Optional[int]
    random_seed_label: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.even_byte is None) != (self.odd_byte is None):
            raise ConfigError("even_byte and odd_byte must both be set or both None")
        if self.even_byte is None and self.random_seed_label is None:
            raise ConfigError(f"random pattern {self.name!r} needs a seed label")
        for byte in (self.even_byte, self.odd_byte):
            if byte is not None and not 0 <= byte <= 0xFF:
                raise ConfigError(f"pattern byte {byte!r} out of range")

    @property
    def is_random(self) -> bool:
        return self.even_byte is None

    def byte_for(self, row: int, victim_row: int, col: int = 0,
                 chip: int = 0, seed: int = 0) -> int:
        """Byte stored at ``(row, col, chip)`` when hammering victim ``victim_row``."""
        if self.is_random:
            gen = rng_mod.derive(seed, "pattern", self.random_seed_label, row, col, chip)
            return int(gen.integers(0, 256))
        distance = abs(row - victim_row)
        return self.even_byte if distance % 2 == 0 else self.odd_byte

    def bit_for(self, row: int, victim_row: int, col: int, chip: int,
                bit: int, seed: int = 0) -> int:
        """Bit value held by cell ``(row, col, chip, bit)`` under this pattern."""
        byte = self.byte_for(row, victim_row, col, chip, seed)
        return (byte >> (bit & 7)) & 1

    def complemented(self) -> "DataPattern":
        """Bitwise complement of this pattern (random complements itself)."""
        if self.is_random:
            return self
        return DataPattern(
            name=_complement_name(self.name),
            even_byte=self.even_byte ^ 0xFF,
            odd_byte=self.odd_byte ^ 0xFF,
        )


def _complement_name(name: str) -> str:
    if name.endswith("_inv"):
        return name[: -len("_inv")]
    return name + "_inv"


COLSTRIPE = DataPattern("colstripe", 0x55, 0x55)
CHECKERED = DataPattern("checkered", 0x55, 0xAA)
ROWSTRIPE = DataPattern("rowstripe", 0x00, 0xFF)
RANDOM = DataPattern("random", None, None, random_seed_label="random")

#: The seven patterns of Table 1, in the order the paper lists them.
PATTERNS: Tuple[DataPattern, ...] = (
    COLSTRIPE,
    COLSTRIPE.complemented(),
    CHECKERED,
    CHECKERED.complemented(),
    ROWSTRIPE,
    ROWSTRIPE.complemented(),
    RANDOM,
)

PATTERN_NAMES = tuple(p.name for p in PATTERNS)
_BY_NAME = {p.name: p for p in PATTERNS}


def pattern_by_name(name: str) -> DataPattern:
    """Look up one of the seven canonical patterns by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigError(
            f"unknown data pattern {name!r}; choose from {PATTERN_NAMES}"
        ) from None


def pattern_index(name: str) -> int:
    """Stable index of a canonical pattern (used by per-cell sensitivities)."""
    try:
        return PATTERN_NAMES.index(name)
    except ValueError:
        raise ConfigError(f"unknown data pattern {name!r}") from None
