"""Data patterns used by the characterization (Table 1 of the paper).

The paper fills the victim row ``V`` and its 8 physically-adjacent rows on
each side with one of seven patterns: *colstripe*, *checkered*, *rowstripe*
(plus the complements of these three) and *random*.  Patterns are defined by
the byte written as a function of the row's distance-parity from the victim:

======================  ==================  =================
Pattern                 V +/- even rows     V +/- odd rows
======================  ==================  =================
colstripe               0x55                0x55
checkered               0x55                0xaa
rowstripe               0x00                0xff
random                  per-row random      per-row random
======================  ==================  =================

A :class:`DataPattern` answers "what bit value does cell *(row, col, bit)*
hold when this pattern is installed around victim ``V``?", which is all the
fault model needs to decide whether a vulnerable cell's charged state is
exposed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro import rng as rng_mod
from repro.errors import ConfigError

# ----------------------------------------------------------------------
# Vectorized random fills
#
# Random-pattern bytes must be a pure function of (data seed, pattern
# label, row, col, chip): the command path asks for one cell at a time
# while the batched oracle asks for a whole row's cells at once, and both
# must see the same device data.  A per-cell BLAKE2b + Philox derivation
# is far too slow for the vectorized path, so random fills use a
# SplitMix64-style integer hash evaluated elementwise over uint64 arrays
# (numpy wraps silently on uint64 overflow, which is exactly the
# modular arithmetic the mixer needs).  Only the 64-bit fill *key* still
# goes through the seed tree, once per (seed, label).
# ----------------------------------------------------------------------
_MASK64 = (1 << 64) - 1
_SALT_ROW = 0x9E3779B97F4A7C15
_SALT_COL = 0xC2B2AE3D27D4EB4F
_SALT_CHIP = 0x165667B19E3779F9
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB

_FILL_KEYS: Dict[Tuple[int, str], int] = {}


def _fill_key(seed: int, label: str) -> int:
    """64-bit key of one (data seed, pattern label) random fill."""
    key = _FILL_KEYS.get((seed, label))
    if key is None:
        key = rng_mod.seed_from_path(seed, "pattern-fill", label) & _MASK64
        _FILL_KEYS[(seed, label)] = key
    return key


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer, elementwise over a uint64 array (in place)."""
    x ^= x >> np.uint64(30)
    x *= np.uint64(_MIX_1)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_MIX_2)
    x ^= x >> np.uint64(31)
    return x


def random_fill_bytes(label: str, seed, rows, cols, chips) -> np.ndarray:
    """Random fill bytes for (broadcast) cell coordinate arrays.

    Returns a uint8 array of the broadcast shape of ``rows``/``cols``/
    ``chips``.  Deterministic in (seed, label, row, col, chip) only.
    """
    rows = np.atleast_1d(np.asarray(rows, dtype=np.uint64))
    cols = np.atleast_1d(np.asarray(cols, dtype=np.uint64))
    chips = np.atleast_1d(np.asarray(chips, dtype=np.uint64))
    x = (rows * np.uint64(_SALT_ROW)
         ^ cols * np.uint64(_SALT_COL)
         ^ chips * np.uint64(_SALT_CHIP)
         ^ np.uint64(_fill_key(int(seed), label)))
    return (_mix64(_mix64(x)) & np.uint64(0xFF)).astype(np.uint8)


@dataclass(frozen=True)
class DataPattern:
    """One of the seven characterization data patterns.

    Attributes:
        name: canonical pattern name (see :data:`PATTERNS`).
        even_byte: byte stored in rows at an even distance from the victim
            (including the victim itself); ``None`` for random patterns.
        odd_byte: byte stored in rows at odd distance; ``None`` for random.
        random_seed_label: label mixed into the RNG path for random fills.
    """

    name: str
    even_byte: Optional[int]
    odd_byte: Optional[int]
    random_seed_label: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.even_byte is None) != (self.odd_byte is None):
            raise ConfigError("even_byte and odd_byte must both be set or both None")
        if self.even_byte is None and self.random_seed_label is None:
            raise ConfigError(f"random pattern {self.name!r} needs a seed label")
        for byte in (self.even_byte, self.odd_byte):
            if byte is not None and not 0 <= byte <= 0xFF:
                raise ConfigError(f"pattern byte {byte!r} out of range")

    @property
    def is_random(self) -> bool:
        return self.even_byte is None

    def byte_for(self, row: int, victim_row: int, col: int = 0,
                 chip: int = 0, seed: int = 0) -> int:
        """Byte stored at ``(row, col, chip)`` when hammering victim ``victim_row``."""
        if self.is_random:
            return int(random_fill_bytes(self.random_seed_label, seed,
                                         row, col, chip)[0])
        distance = abs(row - victim_row)
        return self.even_byte if distance % 2 == 0 else self.odd_byte

    def bit_for(self, row: int, victim_row: int, col: int, chip: int,
                bit: int, seed: int = 0) -> int:
        """Bit value held by cell ``(row, col, chip, bit)`` under this pattern."""
        byte = self.byte_for(row, victim_row, col, chip, seed)
        return (byte >> (bit & 7)) & 1

    def bits_for_cells(self, row: int, victim_row: int, cols, chips, bits,
                       seed: int = 0) -> np.ndarray:
        """Vectorized :meth:`bit_for` over parallel per-cell coordinate arrays.

        ``cols``/``chips``/``bits`` are equal-length arrays describing the
        cells of one row; returns an int8 array of their stored bits.
        Element ``i`` equals ``bit_for(row, victim_row, cols[i], chips[i],
        bits[i], seed)`` exactly.
        """
        shifts = np.atleast_1d(np.asarray(bits)).astype(np.int32) & 7
        if self.is_random:
            fill = random_fill_bytes(self.random_seed_label, seed,
                                     row, cols, chips)
            return ((fill.astype(np.int32) >> shifts) & 1).astype(np.int8)
        byte = self.byte_for(row, victim_row)
        return ((np.int32(byte) >> shifts) & 1).astype(np.int8)

    def complemented(self) -> "DataPattern":
        """Bitwise complement of this pattern (random complements itself)."""
        if self.is_random:
            return self
        return DataPattern(
            name=_complement_name(self.name),
            even_byte=self.even_byte ^ 0xFF,
            odd_byte=self.odd_byte ^ 0xFF,
        )


def _complement_name(name: str) -> str:
    if name.endswith("_inv"):
        return name[: -len("_inv")]
    return name + "_inv"


COLSTRIPE = DataPattern("colstripe", 0x55, 0x55)
CHECKERED = DataPattern("checkered", 0x55, 0xAA)
ROWSTRIPE = DataPattern("rowstripe", 0x00, 0xFF)
RANDOM = DataPattern("random", None, None, random_seed_label="random")

#: The seven patterns of Table 1, in the order the paper lists them.
PATTERNS: Tuple[DataPattern, ...] = (
    COLSTRIPE,
    COLSTRIPE.complemented(),
    CHECKERED,
    CHECKERED.complemented(),
    ROWSTRIPE,
    ROWSTRIPE.complemented(),
    RANDOM,
)

PATTERN_NAMES = tuple(p.name for p in PATTERNS)
_BY_NAME = {p.name: p for p in PATTERNS}

#: Precomputed name -> index map; per-cell sensitivity lookups are on the
#: oracle's innermost loop, so the index must not be a linear scan.
PATTERN_INDEX: Dict[str, int] = {p.name: i for i, p in enumerate(PATTERNS)}


def pattern_by_name(name: str) -> DataPattern:
    """Look up one of the seven canonical patterns by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigError(
            f"unknown data pattern {name!r}; choose from {PATTERN_NAMES}"
        ) from None


def pattern_index(name: str) -> int:
    """Stable index of a canonical pattern (used by per-cell sensitivities)."""
    try:
        return PATTERN_INDEX[name]
    except KeyError:
        raise ConfigError(f"unknown data pattern {name!r}") from None
