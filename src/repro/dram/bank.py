"""Per-bank device state: open-row tracking, timing bookkeeping, row data.

A bank enforces the DRAM protocol (one open row at a time, minimum command
spacings) and owns the *logical data state* of its rows: which data pattern
each row holds and which bits have been flipped by RowHammer so far.

Row data is stored as a pattern descriptor plus a sparse overlay of flipped
bits, so holding thousands of 8 KiB rows costs almost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.dram.data import DataPattern, ROWSTRIPE
from repro.errors import ProtocolError, TimingViolation


@dataclass
class RowData:
    """Data installed in one row: a pattern descriptor plus flip overlay."""

    pattern: DataPattern = ROWSTRIPE
    victim_ref: int = 0          # victim row the pattern parity is anchored to
    flipped: Set[Tuple[int, int, int]] = field(default_factory=set)
    # flipped holds (chip, col, bit) triples whose value is inverted
    # relative to the pattern.

    def bit(self, row: int, chip: int, col: int, bit: int, seed: int) -> int:
        value = self.pattern.bit_for(row, self.victim_ref, col, chip, bit, seed)
        if (chip, col, bit) in self.flipped:
            value ^= 1
        return value


class BankState:
    """Protocol and timing state machine of one bank."""

    def __init__(self, bank_index: int, timing) -> None:
        self.index = bank_index
        self.timing = timing
        self.open_row: Optional[int] = None
        self.act_time_ns: float = float("-inf")
        self.pre_time_ns: float = float("-inf")   # when the bank last precharged
        self.last_col_cmd_ns: float = float("-inf")
        self.last_gap_ns: float = timing.tRP       # precharged time before last ACT
        self.rows: Dict[int, RowData] = {}

    # ------------------------------------------------------------------
    def row_data(self, row: int) -> RowData:
        data = self.rows.get(row)
        if data is None:
            data = RowData()
            self.rows[row] = data
        return data

    # ------------------------------------------------------------------
    # Protocol + timing checks
    # ------------------------------------------------------------------
    def check_activate(self, now_ns: float) -> None:
        if self.open_row is not None:
            raise ProtocolError(
                f"bank {self.index}: ACT while row {self.open_row} is open")
        elapsed = now_ns - self.pre_time_ns
        if elapsed + 1e-9 < self.timing.tRP:
            raise TimingViolation(
                f"bank {self.index}: ACT after {elapsed:.2f} ns, tRP is "
                f"{self.timing.tRP} ns", "tRP", self.timing.tRP, elapsed)

    def apply_activate(self, row: int, now_ns: float) -> None:
        self.check_activate(now_ns)
        self.last_gap_ns = min(now_ns - self.pre_time_ns, 1e12)
        self.open_row = row
        self.act_time_ns = now_ns

    def check_precharge(self, now_ns: float) -> None:
        if self.open_row is None:
            return  # PRE on an idle bank is a legal no-op
        elapsed = now_ns - self.act_time_ns
        if elapsed + 1e-9 < self.timing.tRAS:
            raise TimingViolation(
                f"bank {self.index}: PRE after {elapsed:.2f} ns, tRAS is "
                f"{self.timing.tRAS} ns", "tRAS", self.timing.tRAS, elapsed)

    def apply_precharge(self, now_ns: float) -> Optional[Tuple[int, float, float]]:
        """Close the bank; returns ``(row, on_time, preceding_gap)`` or None."""
        self.check_precharge(now_ns)
        if self.open_row is None:
            self.pre_time_ns = max(self.pre_time_ns, now_ns)
            return None
        row = self.open_row
        on_time = now_ns - self.act_time_ns
        gap = self.last_gap_ns
        self.open_row = None
        self.pre_time_ns = now_ns
        return row, on_time, gap

    def check_column_command(self, now_ns: float) -> int:
        """Validate a RD/WR; returns the open row."""
        if self.open_row is None:
            raise ProtocolError(f"bank {self.index}: column command on idle bank")
        since_act = now_ns - self.act_time_ns
        if since_act + 1e-9 < self.timing.tRCD:
            raise TimingViolation(
                f"bank {self.index}: column command {since_act:.2f} ns after "
                f"ACT, tRCD is {self.timing.tRCD} ns", "tRCD",
                self.timing.tRCD, since_act)
        since_col = now_ns - self.last_col_cmd_ns
        if since_col + 1e-9 < self.timing.tCCD:
            raise TimingViolation(
                f"bank {self.index}: column command {since_col:.2f} ns after "
                f"previous, tCCD is {self.timing.tCCD} ns", "tCCD",
                self.timing.tCCD, since_col)
        self.last_col_cmd_ns = now_ns
        return self.open_row
