"""Parsing of ``# drh: ignore[...]`` suppression comments.

A suppression silences specific rule codes on its own line and *must*
carry a written justification after ``--``::

    gen = make_generator()  # drh: ignore[DRH001] -- calibration-only path

Suppressions without a justification are themselves violations (DRH900):
an unexplained ignore is indistinguishable from a mistake three months
later.  Suppressions that match no violation are reported as stale
(DRH901) so dead ignores cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.statcheck.rules import Violation

#: Any comment that invokes the drh namespace at all.
_DRH_COMMENT = re.compile(r"#\s*drh\s*:")

#: The one well-formed shape: codes in brackets, then ``--`` + reason.
_SUPPRESS = re.compile(
    r"#\s*drh\s*:\s*ignore\s*\[(?P<codes>[^\]]*)\]"
    r"\s*(?:--\s*(?P<reason>\S.*))?\s*$")

_CODE = re.compile(r"^DRH\d{3}$")


@dataclass
class Suppression:
    """One justified ignore comment, pinned to a source line."""

    line: int
    codes: Tuple[str, ...]
    reason: str
    used: bool = False

    def covers(self, code: str) -> bool:
        return code in self.codes


def scan_suppressions(
        source: str, path: str) -> Tuple[Dict[int, Suppression],
                                         List[Violation]]:
    """Extract suppressions from ``source``; malformed ones become DRH900.

    Returns ``(line -> suppression, malformed-violations)``.  Tokenizes
    rather than regexing raw lines so a ``# drh:`` inside a string
    literal is not mistaken for a directive.
    """
    suppressions: Dict[int, Suppression] = {}
    malformed: List[Violation] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}, []  # the parser reports the real problem
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        if not _DRH_COMMENT.search(comment):
            continue
        line, col = token.start
        match = _SUPPRESS.search(comment)
        if match is None:
            malformed.append(Violation(
                path=path, line=line, col=col, code="DRH900",
                message=f"unparseable drh directive {comment.strip()!r}",
                hint="write '# drh: ignore[DRHnnn] -- justification'"))
            continue
        codes = tuple(c.strip() for c in match.group("codes").split(",")
                      if c.strip())
        reason = (match.group("reason") or "").strip()
        bad = [c for c in codes if not _CODE.match(c)]
        if not codes or bad:
            malformed.append(Violation(
                path=path, line=line, col=col, code="DRH900",
                message="suppression must name rule codes like DRH001"
                        + (f"; got {', '.join(bad)}" if bad else ""),
                hint="write '# drh: ignore[DRHnnn] -- justification'"))
            continue
        if not reason:
            malformed.append(Violation(
                path=path, line=line, col=col, code="DRH900",
                message="suppression is missing its justification "
                        f"for [{', '.join(codes)}]",
                hint="append ' -- <why this violation is intentional>'"))
            continue
        suppressions[line] = Suppression(line=line, codes=codes,
                                         reason=reason)
    return suppressions, malformed
