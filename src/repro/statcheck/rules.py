"""The DRH rule set: AST checks behind ``deeprh lint``.

Each rule guards one way the repo's determinism or unit discipline can
rot silently (see DESIGN.md §10 for the invariant each rule protects).
Rules are deliberately syntactic: they resolve import aliases and local
parameter annotations, but do no whole-program type inference — a check
that is cheap enough to run in tier-1 and predictable enough that a
developer can see *why* a line was flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.statcheck.config import LintConfig

#: ``numpy.random`` names that construct generator/bit-generator state.
#: Allowed only inside ``rng-modules`` (normally ``repro/rng.py``).
_NP_CONSTRUCTORS = frozenset((
    "Generator", "Philox", "PCG64", "PCG64DXSM", "MT19937", "SFC64",
    "BitGenerator", "SeedSequence", "default_rng", "RandomState"))

#: ``time`` module functions that read (or pace by) the wall clock.
_WALLCLOCK_TIME = frozenset((
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep"))

#: ``datetime`` classmethods that read the wall clock.
_WALLCLOCK_DATETIME = frozenset(("now", "utcnow", "today"))

#: Methods returning filesystem-order (hence nondeterministic) listings.
_LISTING_METHODS = frozenset(("glob", "iglob", "rglob", "iterdir", "scandir"))

#: ``SeedSequenceTree`` methods / ``repro.rng`` functions taking seed paths.
_SEED_PATH_METHODS = frozenset(("generator", "child", "seed"))
_SEED_PATH_FUNCTIONS = frozenset(("derive", "seed_from_path"))

#: Order-sensitive consumers: feeding them a set fixes an arbitrary order.
_ORDER_SENSITIVE_WRAPPERS = frozenset(("list", "tuple", "enumerate", "sum"))

#: Unit suffixes recognized in identifiers/parameters (repro.units).
_TIME_SUFFIXES = ("_ns", "_us", "_ms", "_s")
_UNIT_SUFFIXES = _TIME_SUFFIXES + ("_c", "_mts")

#: Values too trivial to be "magic" (zero/unity scale factors).
_TRIVIAL_LITERALS = (0, 1)


@dataclass(frozen=True)
class Rule:
    """Metadata for one check: code, one-liner, and the invariant story."""

    code: str
    title: str
    rationale: str


RULES: Dict[str, Rule] = {rule.code: rule for rule in (
    Rule("DRH001", "global or unseeded RNG",
         "all randomness must derive from repro.rng.SeedSequenceTree so "
         "resumed/parallel campaigns replay the exact same draws"),
    Rule("DRH002", "wall-clock read outside allowlisted modules",
         "simulated results must not depend on host time; clocks are "
         "injected (see repro.runner.retry.VirtualClock)"),
    Rule("DRH003", "nondeterministic iteration order feeding results",
         "set/frozenset and unsorted directory listings iterate in "
         "arbitrary order, which changes merge output byte layout"),
    Rule("DRH004", "fragile seed-path part",
         "float and f-string path parts make structural seeds depend on "
         "formatting/rounding; use ints, plain strings, or repr()"),
    Rule("DRH005", "unit-discipline violation",
         "magic numbers duplicating repro.units constants drift "
         "independently; mixed ns/ms arithmetic is a silent 1e6 error"),
    Rule("DRH006", "bare print()/logging call in library code",
         "library telemetry must flow through the obs registry (metrics/"
         "spans) so it stays deterministic, mergeable, and scrapeable; "
         "stray stdout/logging bypasses that plane"),
    Rule("DRH900", "suppression without justification",
         "an unexplained ignore is indistinguishable from a mistake"),
    Rule("DRH901", "stale suppression",
         "an ignore matching no violation hides future regressions"),
)}


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, what to do about it."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} "
        text += self.message
        if self.hint:
            text += f" [fix: {self.hint}]"
        return text


@dataclass
class _ImportMap:
    """Local names for the modules/functions the rules care about."""

    random_modules: Set[str] = field(default_factory=set)
    random_functions: Set[str] = field(default_factory=set)
    numpy_modules: Set[str] = field(default_factory=set)
    np_random_modules: Set[str] = field(default_factory=set)
    np_random_functions: Dict[str, str] = field(default_factory=dict)
    time_modules: Set[str] = field(default_factory=set)
    time_functions: Dict[str, str] = field(default_factory=dict)
    datetime_modules: Set[str] = field(default_factory=set)
    datetime_classes: Set[str] = field(default_factory=set)
    os_modules: Set[str] = field(default_factory=set)
    os_functions: Dict[str, str] = field(default_factory=dict)
    glob_modules: Set[str] = field(default_factory=set)
    glob_functions: Dict[str, str] = field(default_factory=dict)
    rng_functions: Set[str] = field(default_factory=set)
    logging_modules: Set[str] = field(default_factory=set)
    logging_functions: Set[str] = field(default_factory=set)

    def collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_modules.add(local)
                    elif alias.name == "numpy":
                        self.numpy_modules.add(local)
                    elif alias.name == "numpy.random":
                        target = alias.asname
                        if target is not None:
                            self.np_random_modules.add(target)
                        else:  # plain `import numpy.random` binds `numpy`
                            self.numpy_modules.add(local)
                    elif alias.name == "time":
                        self.time_modules.add(local)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(local)
                    elif alias.name == "os":
                        self.os_modules.add(local)
                    elif alias.name == "glob":
                        self.glob_modules.add(local)
                    elif alias.name in ("logging", "logging.config",
                                        "logging.handlers"):
                        self.logging_modules.add(local)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    if module == "random":
                        self.random_functions.add(local)
                    elif module == "numpy" and alias.name == "random":
                        self.np_random_modules.add(local)
                    elif module == "numpy.random":
                        self.np_random_functions[local] = alias.name
                    elif module == "time":
                        self.time_functions[local] = alias.name
                    elif module == "datetime" and alias.name in (
                            "datetime", "date"):
                        self.datetime_classes.add(local)
                    elif module == "os":
                        self.os_functions[local] = alias.name
                    elif module == "glob":
                        self.glob_functions[local] = alias.name
                    elif module in ("repro.rng", "repro"):
                        if alias.name in _SEED_PATH_FUNCTIONS:
                            self.rng_functions.add(local)
                    elif module == "logging" or module.startswith("logging."):
                        self.logging_functions.add(local)

    def is_np_random_attr(self, node: ast.expr) -> bool:
        """True when ``node`` denotes the ``numpy.random`` module."""
        if isinstance(node, ast.Name):
            return node.id in self.np_random_modules
        return (isinstance(node, ast.Attribute)
                and node.attr == "random"
                and isinstance(node.value, ast.Name)
                and node.value.id in self.numpy_modules)


def _suffix_of(name: str, suffixes: Tuple[str, ...]) -> Optional[str]:
    for suffix in suffixes:
        if name.endswith(suffix) and len(name) > len(suffix):
            return suffix
    return None


def _identifier(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _Checker(ast.NodeVisitor):
    """Single-pass visitor running every DRH rule over one module."""

    def __init__(self, path: str, config: LintConfig,
                 imports: _ImportMap) -> None:
        self.path = path
        self.config = config
        self.imports = imports
        self.violations: List[Violation] = []
        self.allow_wallclock = config.allows_wallclock(path)
        self.allow_raw_rng = config.allows_raw_rng(path)
        self.allow_print = config.allows_print(path)
        self._parents: Dict[int, ast.AST] = {}
        #: Stack of {param name -> annotation identifier} per function.
        self._float_params: List[Set[str]] = []

    # -- plumbing ------------------------------------------------------
    def run(self, tree: ast.AST) -> List[Violation]:
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self.visit(tree)
        return self.violations

    def _parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def _flag(self, node: ast.AST, code: str, message: str,
              hint: str = "") -> None:
        self.violations.append(Violation(
            path=self.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), code=code,
            message=message, hint=hint))

    # -- function scopes (for DRH004 annotation lookups, DRH005) -------
    def _visit_function(self, node) -> None:
        floats: Set[str] = set()
        for arg in (*node.args.posonlyargs, *node.args.args,
                    *node.args.kwonlyargs):
            if (isinstance(arg.annotation, ast.Name)
                    and arg.annotation.id == "float"):
                floats.add(arg.arg)
        self._check_default_units(node)
        self._float_params.append(floats)
        self.generic_visit(node)
        self._float_params.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _is_float_param(self, name: str) -> bool:
        return any(name in scope for scope in reversed(self._float_params))

    # -- DRH001 / DRH002 / DRH004 / parts of DRH003+DRH005 -------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_rng_call(node)
        self._check_wallclock_call(node)
        self._check_print_call(node)
        self._check_listing_call(node)
        self._check_set_consumer(node)
        self._check_seed_path_call(node)
        self._check_keyword_units(node)
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if (isinstance(base, ast.Name)
                    and base.id in self.imports.random_modules):
                self._flag(node, "DRH001",
                           f"call to stdlib 'random.{func.attr}' bypasses "
                           "the seeded substrate",
                           "draw from a SeedSequenceTree generator instead")
                return
            if self.imports.is_np_random_attr(base):
                if func.attr in _NP_CONSTRUCTORS:
                    if not self.allow_raw_rng:
                        self._flag(
                            node, "DRH001",
                            f"'np.random.{func.attr}' constructed outside "
                            "repro/rng.py",
                            "obtain generators via SeedSequenceTree"
                            ".generator(...) / repro.rng.derive(...)")
                else:
                    self._flag(
                        node, "DRH001",
                        f"module-level 'np.random.{func.attr}' uses hidden "
                        "global RNG state",
                        "draw from a SeedSequenceTree generator instead")
                return
        elif isinstance(func, ast.Name):
            if func.id in self.imports.random_functions:
                self._flag(node, "DRH001",
                           f"call to stdlib random function '{func.id}'",
                           "draw from a SeedSequenceTree generator instead")
            elif func.id in self.imports.np_random_functions:
                original = self.imports.np_random_functions[func.id]
                if original in _NP_CONSTRUCTORS and self.allow_raw_rng:
                    return
                self._flag(node, "DRH001",
                           f"'numpy.random.{original}' called outside "
                           "repro/rng.py",
                           "obtain generators via SeedSequenceTree"
                           ".generator(...) / repro.rng.derive(...)")

    def _check_wallclock_call(self, node: ast.Call) -> None:
        if self.allow_wallclock:
            return
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Attribute):
            base = func.value
            if (isinstance(base, ast.Name)
                    and base.id in self.imports.time_modules
                    and func.attr in _WALLCLOCK_TIME):
                name = f"time.{func.attr}"
            elif func.attr in _WALLCLOCK_DATETIME:
                if (isinstance(base, ast.Name)
                        and base.id in self.imports.datetime_classes):
                    name = f"{base.id}.{func.attr}"
                elif (isinstance(base, ast.Attribute)
                        and base.attr in ("datetime", "date")
                        and isinstance(base.value, ast.Name)
                        and base.value.id in self.imports.datetime_modules):
                    name = f"datetime.{base.attr}.{func.attr}"
        elif isinstance(func, ast.Name):
            original = self.imports.time_functions.get(func.id)
            if original in _WALLCLOCK_TIME:
                name = f"time.{original}"
        if name is not None:
            self._flag(node, "DRH002",
                       f"wall-clock read '{name}' in a deterministic module",
                       "inject a clock (VirtualClock/WallClock) or add the "
                       "module to [tool.deeprh.lint] wallclock-modules")

    # -- DRH006 --------------------------------------------------------
    def _check_print_call(self, node: ast.Call) -> None:
        """Flag bare ``print()`` and ``logging`` calls in library code."""
        if self.allow_print:
            return
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "print":
                self._flag(node, "DRH006",
                           "bare print() in library code",
                           "emit through the obs registry (get_metrics()/"
                           "get_tracer()) or return the text to the CLI "
                           "layer; add the module to [tool.deeprh.lint] "
                           "print-modules if it IS a user-facing surface")
            elif func.id in self.imports.logging_functions:
                self._flag(node, "DRH006",
                           f"logging call '{func.id}' in library code",
                           "record through the obs registry instead of "
                           "the logging module")
        elif isinstance(func, ast.Attribute):
            base = func.value
            if (isinstance(base, ast.Name)
                    and base.id in self.imports.logging_modules):
                self._flag(node, "DRH006",
                           f"logging call 'logging.{func.attr}' in "
                           "library code",
                           "record through the obs registry instead of "
                           "the logging module")

    # -- DRH003 --------------------------------------------------------
    def _is_listing_call(self, node: ast.expr) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if (isinstance(base, ast.Name)
                    and base.id in self.imports.os_modules
                    and func.attr in ("listdir", "scandir")):
                return f"os.{func.attr}"
            if (isinstance(base, ast.Name)
                    and base.id in self.imports.glob_modules
                    and func.attr in ("glob", "iglob")):
                return f"glob.{func.attr}"
            if func.attr in _LISTING_METHODS:
                return f".{func.attr}()"
        elif isinstance(func, ast.Name):
            original = self.imports.os_functions.get(func.id)
            if original in ("listdir", "scandir"):
                return f"os.{original}"
            original = self.imports.glob_functions.get(func.id)
            if original in ("glob", "iglob"):
                return f"glob.{original}"
        return None

    def _check_listing_call(self, node: ast.Call) -> None:
        name = self._is_listing_call(node)
        if name is None:
            return
        parent = self._parent(node)
        if (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "sorted"):
            return
        self._flag(node, "DRH003",
                   f"directory listing '{name}' is filesystem-ordered",
                   "wrap it in sorted(...) before iterating or storing")

    def _set_valued(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set literal"
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")):
            return f"{node.func.id}(...)"
        return None

    def _check_unordered_iter(self, iterable: ast.expr) -> None:
        described = self._set_valued(iterable)
        if described is not None:
            self._flag(iterable, "DRH003",
                       f"iterating {described} yields arbitrary order",
                       "iterate sorted(...) so downstream results are "
                       "order-stable")

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_unordered_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for comp in node.generators:
            self._check_unordered_iter(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def visit_Set(self, node: ast.Set) -> None:
        self._check_set_consumer(node)
        self.generic_visit(node)

    def _check_set_consumer(self, node: ast.expr) -> None:
        """Flag sets fed into order-sensitive constructors/aggregators."""
        parent = self._parent(node)
        if not (isinstance(parent, ast.Call) and node in parent.args):
            return
        func = parent.func
        sensitive = (isinstance(func, ast.Name)
                     and func.id in _ORDER_SENSITIVE_WRAPPERS) \
            or (isinstance(func, ast.Attribute) and func.attr == "join")
        if sensitive and self._set_valued(node) is not None:
            self._flag(node, "DRH003",
                       "materializing a set into an ordered value fixes an "
                       "arbitrary order",
                       "apply sorted(...) first")

    # -- DRH004 --------------------------------------------------------
    def _check_seed_path_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr not in (_SEED_PATH_METHODS | _SEED_PATH_FUNCTIONS):
                return
            called = func.attr
        elif isinstance(func, ast.Name):
            if func.id not in self.imports.rng_functions:
                return
            called = func.id
        else:
            return
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                continue
            if isinstance(arg, ast.Constant) and isinstance(arg.value, float):
                self._flag(arg, "DRH004",
                           f"float literal {arg.value!r} as a seed-path "
                           f"part of '{called}'",
                           "use an int, a plain string, or repr(value)")
            elif isinstance(arg, ast.JoinedStr):
                self._flag(arg, "DRH004",
                           f"f-string as a seed-path part of '{called}'",
                           "pass the parts separately; formatting changes "
                           "silently reseed every stream")
            elif (isinstance(arg, ast.Name)
                    and self._is_float_param(arg.id)):
                self._flag(arg, "DRH004",
                           f"float parameter '{arg.id}' as a seed-path "
                           f"part of '{called}'",
                           "encode it stably first, e.g. repr(value)")

    # -- DRH005 --------------------------------------------------------
    def _magic_unit_literal(self, name: str,
                            value: object) -> Optional[Tuple[str, str]]:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        if value in _TRIVIAL_LITERALS:
            return None
        if name.endswith("_ns") and abs(value) >= 1000 and value % 1000 == 0:
            return (f"bare literal {value!r} for '{name}' looks like a "
                    "converted duration",
                    "use repro.units.ms_to_ns()/us_to_ns() or NS_PER_*")
        if name.endswith("_ms") and float(value) == 64.0:
            return (f"bare literal {value!r} for '{name}' duplicates the "
                    "refresh window",
                    "use repro.units.TREFW_MS")
        if name.endswith("_c") and float(value) in (50.0, 90.0):
            return (f"bare literal {value!r} for '{name}' duplicates the "
                    "paper's temperature bounds",
                    "use repro.units.PAPER_TEMP_MIN_C / PAPER_TEMP_MAX_C")
        return None

    def _flag_unit_literal(self, node: ast.AST, name: str,
                           value: object) -> None:
        found = self._magic_unit_literal(name, value)
        if found is not None:
            message, hint = found
            self._flag(node, "DRH005", message, hint)

    def _check_keyword_units(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if (keyword.arg is not None
                    and _suffix_of(keyword.arg, _UNIT_SUFFIXES)
                    and isinstance(keyword.value, ast.Constant)):
                self._flag_unit_literal(keyword.value, keyword.arg,
                                        keyword.value.value)

    def _check_default_units(self, node) -> None:
        positional = (*node.args.posonlyargs, *node.args.args)
        defaults = node.args.defaults
        for arg, default in zip(positional[len(positional) - len(defaults):],
                                defaults):
            if (isinstance(default, ast.Constant)
                    and _suffix_of(arg.arg, _UNIT_SUFFIXES)):
                self._flag_unit_literal(default, arg.arg, default.value)
        for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
            if (default is not None and isinstance(default, ast.Constant)
                    and _suffix_of(arg.arg, _UNIT_SUFFIXES)):
                self._flag_unit_literal(default, arg.arg, default.value)

    def _check_assign_units(self, target: ast.expr,
                            value: Optional[ast.expr]) -> None:
        name = _identifier(target)
        if (name is None or name.isupper() or name.upper() == name
                or not isinstance(value, ast.Constant)):
            return
        if _suffix_of(name, _UNIT_SUFFIXES):
            self._flag_unit_literal(value, name, value.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_assign_units(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_assign_units(node.target, node.value)
        self.generic_visit(node)

    def _operand_unit(self, node: ast.expr) -> Optional[str]:
        name = _identifier(node)
        if name is None:
            return None
        suffix = _suffix_of(name, _UNIT_SUFFIXES)
        return suffix

    def _check_mixed_units(self, node: ast.AST, left: ast.expr,
                           right: ast.expr) -> None:
        left_unit = self._operand_unit(left)
        right_unit = self._operand_unit(right)
        if (left_unit is not None and right_unit is not None
                and left_unit != right_unit):
            self._flag(node, "DRH005",
                       f"mixing '*{left_unit}' and '*{right_unit}' "
                       "operands without an explicit conversion",
                       "convert via repro.units helpers before combining")

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_mixed_units(node, node.left, node.right)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        for left, right in zip((node.left, *node.comparators),
                               node.comparators):
            self._check_mixed_units(node, left, right)
        self.generic_visit(node)


def check_module(tree: ast.AST, path: str,
                 config: LintConfig) -> List[Violation]:
    """Run every enabled DRH rule over one parsed module."""
    imports = _ImportMap()
    imports.collect(tree)
    return _Checker(path, config, imports).run(tree)


def iter_rules() -> Iterator[Rule]:
    """All rules, in code order (for ``deeprh lint --list-rules``)."""
    for code in sorted(RULES):
        yield RULES[code]
