"""Lint configuration: defaults, ``pyproject.toml`` loading, path matching.

The linter reads ``[tool.deeprh.lint]`` from ``pyproject.toml``::

    [tool.deeprh.lint]
    disable = ["DRH901"]
    wallclock-modules = ["src/repro/runner/retry.py"]
    rng-modules = ["src/repro/rng.py"]

    [tool.deeprh.lint.per-file-ignores]
    "src/repro/legacy.py" = ["DRH005"]

Unknown keys are rejected rather than silently ignored, so a typo in the
config cannot quietly disable a rule.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, FrozenSet, Optional, Tuple, Union

from repro.errors import ConfigError

PathLike = Union[str, pathlib.Path]

#: Modules allowed to construct raw bit generators / ``Generator`` objects.
DEFAULT_RNG_MODULES: Tuple[str, ...] = ("repro/rng.py",)

#: Modules allowed bare ``print()``/``logging`` calls (DRH006) — the CLI
#: is the user-facing surface; library telemetry goes through the obs
#: registry instead.
DEFAULT_PRINT_MODULES: Tuple[str, ...] = ("repro/cli.py",)

_KNOWN_KEYS = frozenset(
    ("disable", "wallclock-modules", "rng-modules", "print-modules",
     "per-file-ignores"))


@dataclass(frozen=True)
class LintConfig:
    """Which rules run where.

    Attributes:
        disabled: rule codes switched off globally.
        wallclock_modules: path patterns allowed to read the wall clock
            (DRH002) — bench harnesses and the clock-injection seam.
        rng_modules: path patterns allowed to construct raw numpy bit
            generators (DRH001) — normally only ``repro/rng.py``.
        print_modules: path patterns allowed bare ``print()``/``logging``
            calls (DRH006) — normally only the CLI entry point.
        per_file_ignores: path pattern -> codes ignored in those files.
    """

    disabled: FrozenSet[str] = frozenset()
    wallclock_modules: Tuple[str, ...] = ()
    rng_modules: Tuple[str, ...] = DEFAULT_RNG_MODULES
    print_modules: Tuple[str, ...] = DEFAULT_PRINT_MODULES
    per_file_ignores: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def ignored_for(self, path: PathLike) -> FrozenSet[str]:
        """All codes disabled for ``path`` (global + per-file)."""
        codes = set(self.disabled)
        for pattern, ignored in self.per_file_ignores.items():
            if path_matches(path, pattern):
                codes.update(ignored)
        return frozenset(codes)

    def allows_wallclock(self, path: PathLike) -> bool:
        return any(path_matches(path, p) for p in self.wallclock_modules)

    def allows_raw_rng(self, path: PathLike) -> bool:
        return any(path_matches(path, p) for p in self.rng_modules)

    def allows_print(self, path: PathLike) -> bool:
        return any(path_matches(path, p) for p in self.print_modules)


def path_matches(path: PathLike, pattern: str) -> bool:
    """Match ``path`` against a config pattern, suffix-tolerantly.

    Patterns are POSIX-style and may be relative to any ancestor, so
    ``repro/rng.py`` matches ``/repo/src/repro/rng.py`` regardless of
    where the repo is checked out.
    """
    posix = pathlib.PurePath(path).as_posix()
    pattern = pathlib.PurePath(pattern).as_posix()
    return (fnmatch(posix, pattern)
            or fnmatch(posix, "*/" + pattern)
            or posix == pattern)


def _check_code(code: object) -> str:
    if not (isinstance(code, str) and code.startswith("DRH")
            and code[3:].isdigit() and len(code) == 6):
        raise ConfigError(
            f"[tool.deeprh.lint] rule codes look like 'DRH001'; got {code!r}")
    return code


def _check_str_list(value: object, key: str) -> Tuple[str, ...]:
    if not (isinstance(value, (list, tuple))
            and all(isinstance(v, str) for v in value)):
        raise ConfigError(
            f"[tool.deeprh.lint] {key} must be a list of strings")
    return tuple(value)


def load_config(pyproject: Optional[PathLike]) -> LintConfig:
    """Build a :class:`LintConfig` from a ``pyproject.toml`` (or defaults).

    Passing ``None`` — or a file without a ``[tool.deeprh.lint]`` table —
    yields the default configuration.  Requires :mod:`tomllib`
    (Python 3.11+); on older interpreters the defaults are returned and
    the config table is ignored.
    """
    if pyproject is None:
        return LintConfig()
    path = pathlib.Path(pyproject)
    if not path.is_file():
        raise ConfigError(f"lint config file not found: {path}")
    try:
        import tomllib
    except ImportError:  # Python < 3.11: run with built-in defaults
        return LintConfig()
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("deeprh", {}).get("lint", {})
    unknown = set(table) - _KNOWN_KEYS
    if unknown:
        raise ConfigError(
            f"unknown [tool.deeprh.lint] keys: {', '.join(sorted(unknown))}; "
            f"expected one of {', '.join(sorted(_KNOWN_KEYS))}")
    per_file: Dict[str, Tuple[str, ...]] = {}
    raw_ignores = table.get("per-file-ignores", {})
    if not isinstance(raw_ignores, dict):
        raise ConfigError(
            "[tool.deeprh.lint] per-file-ignores must be a table of "
            "path pattern -> list of codes")
    for pattern, codes in raw_ignores.items():
        per_file[pattern] = tuple(
            _check_code(c) for c in _check_str_list(codes, "per-file-ignores"))
    return LintConfig(
        disabled=frozenset(
            _check_code(c) for c in _check_str_list(
                table.get("disable", ()), "disable")),
        wallclock_modules=_check_str_list(
            table.get("wallclock-modules", ()), "wallclock-modules"),
        rng_modules=_check_str_list(
            table.get("rng-modules", DEFAULT_RNG_MODULES), "rng-modules"),
        print_modules=_check_str_list(
            table.get("print-modules", DEFAULT_PRINT_MODULES),
            "print-modules"),
        per_file_ignores=per_file,
    )


def find_pyproject(start: PathLike) -> Optional[pathlib.Path]:
    """Walk upward from ``start`` to the nearest ``pyproject.toml``."""
    node = pathlib.Path(start).resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
