"""Text and JSON renderers for lint results."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from repro.statcheck.rules import RULES, Violation


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    """Human-readable report, one line per violation plus a summary."""
    lines: List[str] = [v.render() for v in violations]
    if violations:
        counts = Counter(v.code for v in violations)
        per_rule = ", ".join(f"{code}: {n}"
                             for code, n in sorted(counts.items()))
        lines.append(f"{len(violations)} violation(s) in {files_checked} "
                     f"file(s) [{per_rule}]")
    else:
        lines.append(f"statcheck: {files_checked} file(s) clean")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    """Machine-readable report for CI annotation tooling."""
    payload = {
        "files_checked": files_checked,
        "violation_count": len(violations),
        "counts": dict(sorted(Counter(
            v.code for v in violations).items())),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "code": v.code,
                "title": RULES[v.code].title if v.code in RULES else "",
                "message": v.message,
                "hint": v.hint,
            }
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
