"""Lint driver: discover files, run rules, apply suppressions and config.

File discovery is itself determinism-disciplined: directories are walked
in sorted order, so the report — and the JSON consumed by CI — is stable
across filesystems.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, List, Optional, Sequence

from repro.errors import ConfigError
from repro.statcheck.config import LintConfig, PathLike
from repro.statcheck.rules import check_module, Violation
from repro.statcheck.suppressions import scan_suppressions


def _sort_key(violation: Violation):
    return (violation.path, violation.line, violation.col, violation.code)


def lint_source(source: str, path: str = "<string>",
                config: Optional[LintConfig] = None) -> List[Violation]:
    """Lint one module's source text (the unit-test entry point)."""
    config = config if config is not None else LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Violation(
            path=path, line=error.lineno or 1, col=error.offset or 0,
            code="DRH900", message=f"file does not parse: {error.msg}",
            hint="fix the syntax error; unparseable files cannot be "
                 "checked")]
    suppressions, malformed = scan_suppressions(source, path)
    ignored = config.ignored_for(path)
    kept: List[Violation] = []
    for violation in check_module(tree, path, config):
        if violation.code in ignored:
            continue
        suppression = suppressions.get(violation.line)
        if suppression is not None and suppression.covers(violation.code):
            suppression.used = True
            continue
        kept.append(violation)
    if "DRH900" not in ignored:
        kept.extend(malformed)
    if "DRH901" not in ignored:
        for suppression in suppressions.values():
            live = [c for c in suppression.codes if c not in ignored]
            if live and not suppression.used:
                kept.append(Violation(
                    path=path, line=suppression.line, col=0, code="DRH901",
                    message="suppression matches no violation on this line "
                            f"([{', '.join(suppression.codes)}])",
                    hint="delete the stale '# drh: ignore' comment"))
    return sorted(kept, key=_sort_key)


def lint_file(path: PathLike,
              config: Optional[LintConfig] = None) -> List[Violation]:
    """Lint one ``.py`` file on disk."""
    file_path = pathlib.Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigError(f"cannot read {file_path}: {error}") from error
    return lint_source(source, path=file_path.as_posix(), config=config)


def discover_files(paths: Sequence[PathLike]) -> List[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated module list."""
    found: List[pathlib.Path] = []
    for entry in paths:
        path = pathlib.Path(entry)
        if path.is_dir():
            found.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            found.append(path)
        else:
            raise ConfigError(f"lint target does not exist: {path}")
    unique: List[pathlib.Path] = []
    seen = set()
    for path in found:
        key = path.resolve().as_posix()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def lint_paths(paths: Iterable[PathLike],
               config: Optional[LintConfig] = None) -> List[Violation]:
    """Lint every module under ``paths`` and return sorted violations."""
    violations: List[Violation] = []
    for file_path in discover_files(list(paths)):
        violations.extend(lint_file(file_path, config=config))
    return sorted(violations, key=_sort_key)
