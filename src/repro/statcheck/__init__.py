"""Static analysis of the repo's determinism and unit-discipline invariants.

The reproduction's core guarantee is *structural determinism*: every
stochastic draw descends from :class:`repro.rng.SeedSequenceTree`, so
resumed, parallel and batched campaigns are byte-identical to serial runs.
That invariant — and the ns/°C/MT-s unit conventions of
:mod:`repro.units` — is easy to break silently: one ``np.random.seed()``
in a helper, one ``for path in dir.glob(...)`` in a merge path, and every
figure stops being reproducible without any test failing loudly.

``deeprh lint`` walks the AST of every module under ``src/repro`` and
enforces:

========  ==============================================================
DRH001    global / unseeded RNG (``random.*``, ``np.random.*`` module
          state, ``default_rng``/``Generator`` built outside
          ``repro/rng.py``)
DRH002    wall-clock reads (``time.time``, ``perf_counter``,
          ``datetime.now`` ...) outside allowlisted clock modules
DRH003    nondeterministic iteration order (sets, unsorted directory
          listings) feeding results
DRH004    fragile seed-path parts (floats, f-strings) passed to
          ``SeedSequenceTree`` / ``derive``
DRH005    bare magic numbers where a :mod:`repro.units` helper or
          constant exists, and mixed ns/ms arithmetic
DRH900    malformed suppression (missing the required justification)
DRH901    suppression that matches no violation (stale ignore)
========  ==============================================================

A violation can be silenced only with a justified suppression::

    value = time.monotonic()  # drh: ignore[DRH002] -- paces a real rig

Configuration lives in ``pyproject.toml`` under ``[tool.deeprh.lint]``.
"""

from repro.statcheck.config import LintConfig, find_pyproject, load_config
from repro.statcheck.engine import lint_file, lint_paths, lint_source
from repro.statcheck.reporting import render_json, render_text
from repro.statcheck.rules import RULES, Rule, Violation, iter_rules

__all__ = [
    "LintConfig",
    "RULES",
    "Rule",
    "Violation",
    "find_pyproject",
    "iter_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "render_json",
    "render_text",
]
