"""Physical units and conversions used across the library.

Internally, all times are kept in **nanoseconds** (float), temperatures in
**degrees Celsius** (float) and frequencies in **MT/s** as in DRAM datasheets.
These helpers keep conversions explicit at API boundaries.
"""

from __future__ import annotations

NS_PER_US = 1_000.0
NS_PER_MS = 1_000_000.0
NS_PER_S = 1_000_000_000.0

#: The refresh window of DDR3/DDR4 devices at normal temperatures (JEDEC).
TREFW_MS = 64.0

#: Temperature sweep used throughout the paper's experiments (Section 4.2).
PAPER_TEMPERATURES_C = tuple(range(50, 95, 5))

#: Minimum / maximum temperature tested in the paper; ranges touching these
#: bounds are *censored* (the true vulnerable range may extend past them).
PAPER_TEMP_MIN_C = 50.0
PAPER_TEMP_MAX_C = 90.0

#: Temperature step of the paper's sweep.
PAPER_TEMP_STEP_C = 5.0


def ms_to_ns(ms: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return ms * NS_PER_MS


def us_to_ns(us: float) -> float:
    """Convert microseconds to nanoseconds."""
    return us * NS_PER_US


def s_to_ns(s: float) -> float:
    """Convert seconds to nanoseconds."""
    return s * NS_PER_S


def ns_to_ms(ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return ns / NS_PER_MS


def ns_to_s(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NS_PER_S


def clock_period_ns(transfer_rate_mts: float) -> float:
    """Clock period for a DDR transfer rate given in MT/s.

    DDR transfers two beats per clock, so the command-clock period is
    ``2000 / rate`` nanoseconds (e.g. DDR4-2400 -> 0.833 ns clock,
    command granularity 1.25 ns on the paper's SoftMC after FPGA division).
    """
    if transfer_rate_mts <= 0:
        raise ValueError(f"transfer rate must be positive, got {transfer_rate_mts}")
    return 2000.0 / transfer_rate_mts
