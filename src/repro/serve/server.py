"""``deeprh serve`` — the campaign runner as a long-lived service.

One asyncio process listens on a Unix domain socket and runs
characterization campaigns on behalf of NDJSON clients (see
:mod:`repro.serve.protocol` for the wire format).  The service exists to
make the *operational* half of the paper's methodology shareable: a lab
queues sweeps from several analysis notebooks against one warm process —
one shared oracle-matrix cache, one supervised worker budget — instead of
cold-starting a CLI per figure.

Robustness model, in one paragraph: admission is **bounded and honest**
(:class:`~repro.serve.admission.AdmissionController` — a full service
rejects with ``overloaded`` rather than queueing unbounded work), every
request carries an optional **deadline** and a cooperative
:class:`~repro.runner.cancel.CancelToken`, a **circuit breaker**
(:class:`~repro.serve.breaker.CircuitBreaker`) degrades parallel dispatch
to serial when worker pools keep dying, and SIGTERM/SIGINT triggers a
**graceful drain**: stop admitting, give in-flight campaigns a grace
period, then cancel them at module boundaries (completed modules are
already checkpointed) and write a resume manifest of everything
interrupted.  The service's own failure modes are injectable through the
``serve.accept`` / ``serve.request`` / ``serve.stream`` fault sites, so
the chaos suite can drive all of this deterministically.

Determinism: a campaign result is a pure function of ``(seed, spec)``.
The service never touches that function — it only decides *when* and
*with how many workers* a request runs, and serial/parallel execution is
byte-identical by construction — so a served result is byte-for-byte the
result the CLI computes for the same request
(:func:`repro.serve.protocol.canonical_result_bytes` is the comparison
every test uses).
"""

from __future__ import annotations

import asyncio
import contextlib
import errno
import json
import pathlib
import signal
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.core.serialize import result_to_dict
from repro.errors import CampaignCancelled, CampaignParked, ConfigError
from repro.faultmodel.batch import SharedMatrixCache, install_shared_matrix_cache
from repro.faultmodel.population import set_default_row_cache_rows
from repro.faults.plan import FaultPlan
from repro.obs import bound_recorders, get_metrics
from repro.obs.clock import monotonic_ns
from repro.obs.expo import CONTENT_TYPE, render_prometheus
from repro.obs.trace import (
    DEFAULT_TRACE_MAX_BYTES,
    DEFAULT_TRACE_SEGMENTS,
    RotatingTraceWriter,
    TraceContext,
    Tracer,
    reroot_spans,
)
from repro.runner import CampaignRunner, RetryPolicy, SupervisorPolicy
from repro.runner.cancel import CancelToken
from repro.runner.governor import ResourceGovernor
from repro.serve import protocol
from repro.serve.admission import ADMIT, DRAINING, AdmissionController
from repro.serve.breaker import BreakerPolicy, CircuitBreaker
from repro.serve.health import HealthMonitor
from repro.serve.latency import LatencyTracker
from repro.serve.protocol import CampaignRequest, ProtocolError

#: CancelToken reasons -> protocol error reasons.
_CANCEL_REASONS = {
    "deadline": protocol.ERROR_DEADLINE,
    "drain": protocol.ERROR_DRAIN,
    "aborted": protocol.ERROR_ABORTED,
    "client-cancel": protocol.ERROR_CANCELLED,
    "client-disconnect": protocol.ERROR_CANCELLED,
}


@dataclass(eq=False)
class _Connection:
    """One client connection: serialized writes through an outbox queue."""

    index: int
    writer: asyncio.StreamWriter
    outbox: "asyncio.Queue[Optional[bytes]]" = field(
        default_factory=asyncio.Queue)
    jobs: Dict[str, "_Job"] = field(default_factory=dict)
    alive: bool = True
    task: Optional[asyncio.Task] = None

    def send(self, event: Dict[str, Any]) -> None:
        if self.alive:
            self.outbox.put_nowait(protocol.encode(event))


@dataclass(eq=False)
class _Job:
    """One admitted campaign request moving through the service."""

    request: CampaignRequest
    conn: _Connection
    token: CancelToken = field(default_factory=CancelToken)
    abort_injected: bool = False
    started: bool = False
    degraded: bool = False
    pool_lost: bool = False
    modules_streamed: int = 0
    modules_total: int = 0
    flips: int = 0


class CampaignService:
    """Admission-controlled, drain-capable campaign server."""

    def __init__(self, socket_path, *,
                 max_inflight: int = 2, max_queue: int = 8,
                 breaker: Optional[BreakerPolicy] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 drain_grace_s: float = 5.0,
                 resume_manifest=None,
                 shared_cache_entries: int = 4096,
                 row_cache_rows: Optional[int] = None,
                 max_attempts: int = 3,
                 governor: Optional[ResourceGovernor] = None,
                 health_interval_s: float = 0.25,
                 metrics_port: Optional[int] = None,
                 trace_dir=None,
                 trace_max_bytes: int = DEFAULT_TRACE_MAX_BYTES,
                 trace_segments: int = DEFAULT_TRACE_SEGMENTS) -> None:
        if drain_grace_s < 0:
            raise ConfigError("drain_grace_s must be >= 0")
        if health_interval_s <= 0:
            raise ConfigError("health_interval_s must be positive")
        if metrics_port is not None and not 0 <= int(metrics_port) <= 65535:
            raise ConfigError("metrics_port must be in [0, 65535]")
        self.socket_path = pathlib.Path(socket_path)
        self.admission = AdmissionController(max_inflight=max_inflight,
                                             max_queue=max_queue)
        self.breaker = CircuitBreaker(breaker)
        self.fault_plan = fault_plan
        self.drain_grace_s = float(drain_grace_s)
        self.resume_manifest = pathlib.Path(
            resume_manifest if resume_manifest is not None
            else str(socket_path) + ".resume.json")
        self.shared_cache_entries = int(shared_cache_entries)
        self.row_cache_rows = row_cache_rows
        self.retry = RetryPolicy(max_attempts=max_attempts)
        self._prev_row_cache_rows: Optional[int] = None
        self._queue: "asyncio.Queue[Optional[_Job]]" = asyncio.Queue()
        self._jobs: Set[_Job] = set()
        self._conns: Set[_Connection] = set()
        self._conn_count = 0
        self._draining = False
        self._drain_reason = ""
        self._manifest_entries: List[Dict[str, Any]] = []
        self._shutdown: Optional[asyncio.Event] = None
        self._consumers: List[asyncio.Task] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._prev_cache: Optional[SharedMatrixCache] = None
        #: Resource governance: the ladder's serve-side face.  Campaigns
        #: executed by this service share the governor, so pressure seen
        #: by any request degrades (and recovers) the whole process.
        self.governor = governor
        self.health = HealthMonitor(governor)
        self.health_interval_s = float(health_interval_s)
        self._health_task: Optional[asyncio.Task] = None
        #: Telemetry plane.  The latency tracker holds wall-clock request
        #: percentiles (deliberately outside the deterministic metrics
        #: registry); the trace writer, when configured, receives every
        #: traced request's spans rerooted under a unique ``r<n>`` prefix.
        self.latency = LatencyTracker()
        self.metrics_port = int(metrics_port) \
            if metrics_port is not None else None
        self.metrics_address: Optional[str] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._trace_writer = RotatingTraceWriter(
            trace_dir, max_bytes=trace_max_bytes,
            max_segments=trace_segments) if trace_dir is not None else None
        self._request_seq = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def serve_forever(self, *, install_signals: bool = True,
                            ready: Optional[asyncio.Event] = None) -> int:
        """Run until drained; returns 0 on a clean drain."""
        loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if self.shared_cache_entries > 0:
            self._prev_cache = install_shared_matrix_cache(
                SharedMatrixCache(entries=self.shared_cache_entries))
        if self.row_cache_rows is not None:
            self._prev_row_cache_rows = set_default_row_cache_rows(
                self.row_cache_rows)
        if install_signals:
            for signum, name in ((signal.SIGTERM, "SIGTERM"),
                                 (signal.SIGINT, "SIGINT")):
                with contextlib.suppress(NotImplementedError, RuntimeError,
                                         ValueError):
                    loop.add_signal_handler(
                        signum, self.begin_drain, name)
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.socket_path))
        if self.metrics_port is not None:
            # Localhost-only scrape listener: same exposition text as the
            # ``metrics`` protocol op, for Prometheus-shaped pollers that
            # speak HTTP rather than the NDJSON socket.
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http, host="127.0.0.1",
                port=self.metrics_port)
            bound_port = self._metrics_server.sockets[0].getsockname()[1]
            self.metrics_address = f"127.0.0.1:{bound_port}"
        self._consumers = [
            asyncio.ensure_future(self._consume())
            for _ in range(self.admission.max_inflight)]
        if self.health.governed:
            self._health_task = asyncio.ensure_future(self._health_loop())
        if ready is not None:
            ready.set()
        try:
            await self._shutdown.wait()
        finally:
            await self._close()
        return 0

    async def _close(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for _ in self._consumers:
            self._queue.put_nowait(None)
        for task in self._consumers:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        for conn in list(self._conns):
            self._close_connection(conn)
        if self.shared_cache_entries > 0:
            install_shared_matrix_cache(self._prev_cache)
        if self.row_cache_rows is not None:
            set_default_row_cache_rows(self._prev_row_cache_rows)
        if self._trace_writer is not None:
            self._trace_writer.close()
        with contextlib.suppress(OSError):
            self.socket_path.unlink()

    async def _health_loop(self) -> None:
        """Tick the governor even while the service idles.

        Campaigns tick the shared governor from their own loops; this
        task covers the gaps so a starved-but-idle service still climbs
        (and, crucially, recovers down) the ladder between requests.
        """
        while True:
            self.health.tick()
            await asyncio.sleep(self.health_interval_s)

    # ------------------------------------------------------------------
    def begin_drain(self, reason: str = "drain") -> None:
        """Stop admitting; finish or cancel in-flight work; shut down.

        Idempotent; safe to call from a signal handler registered on the
        event loop.  The actual drain runs as a task so the handler
        returns immediately.
        """
        if self._draining:
            return
        self._draining = True
        self._drain_reason = reason
        self.admission.begin_drain()
        asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        grace_until = loop.time() + self.drain_grace_s
        while not self.admission.idle() and loop.time() < grace_until:
            await asyncio.sleep(0.02)
        # Grace spent: cancel whatever is still running or queued.  The
        # runner stops at the next module/unit boundary; every module
        # completed so far is already checkpointed, so the manifest's
        # requests resume rather than restart.
        for job in list(self._jobs):
            job.token.cancel("drain")
        while not self.admission.idle():
            await asyncio.sleep(0.02)
        self._write_manifest()
        assert self._shutdown is not None
        self._shutdown.set()

    def _write_manifest(self) -> None:
        manifest = {
            "reason": self._drain_reason,
            "socket": str(self.socket_path),
            "interrupted": [entry for entry in self._manifest_entries
                            if entry["state"] == "interrupted"],
            "queued": [entry for entry in self._manifest_entries
                       if entry["state"] == "queued"],
        }
        self.resume_manifest.parent.mkdir(parents=True, exist_ok=True)
        self.resume_manifest.write_text(
            json.dumps(manifest, sort_keys=True, indent=2) + "\n")

    def _record_drained(self, job: _Job, state: str) -> None:
        entry = job.request.describe()
        entry["state"] = state
        entry["modules_streamed"] = job.modules_streamed
        self._manifest_entries.append(entry)

    # ------------------------------------------------------------------
    # Connection handling (event-loop thread)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._conn_count += 1
        index = self._conn_count
        if self.fault_plan is not None:
            event = self.fault_plan.roll("serve.accept", "conn", index)
            if event is not None and event.kind == "emfile":
                # Injected descriptor exhaustion: the accept itself
                # succeeded (asyncio already holds the fd) but the
                # process is at its limit, so shed this connection and
                # keep serving — a real EMFILE must never kill the loop.
                get_metrics().counter("serve.accept.emfile").inc()
                if self.governor is not None:
                    self.governor.tick()
                writer.close()
                return
            if event is not None:
                # Injected accept failure: the peer sees an immediate
                # close, exactly like an accept-queue overflow.
                get_metrics().counter("serve.accept.dropped").inc()
                writer.close()
                return
        conn = _Connection(index=index, writer=writer)
        conn.task = asyncio.ensure_future(self._writer_loop(conn))
        self._conns.add(conn)
        get_metrics().counter("serve.connections").inc()
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                self._dispatch(conn, line)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except OSError as error:
            # Transient accept/read errors (EMFILE, ENFILE, ECONNABORTED)
            # cost one connection, never the server.
            if error.errno not in (errno.EMFILE, errno.ENFILE,
                                   errno.ECONNABORTED):
                raise
            get_metrics().counter("serve.accept.emfile").inc()
        finally:
            # A departed client cannot receive results; cancel its
            # unfinished requests so their capacity frees immediately.
            for job in list(conn.jobs.values()):
                job.token.cancel("client-disconnect")
            self._close_connection(conn)

    def _close_connection(self, conn: _Connection) -> None:
        if conn not in self._conns:
            return
        self._conns.discard(conn)
        conn.alive = False
        conn.outbox.put_nowait(None)

    async def _writer_loop(self, conn: _Connection) -> None:
        try:
            while True:
                data = await conn.outbox.get()
                if data is None:
                    break
                conn.writer.write(data)
                await conn.writer.drain()
        except (ConnectionError, BrokenPipeError):
            conn.alive = False
        finally:
            conn.writer.close()
            with contextlib.suppress(ConnectionError, BrokenPipeError):
                await conn.writer.wait_closed()

    # ------------------------------------------------------------------
    def _dispatch(self, conn: _Connection, line: str) -> None:
        try:
            payload = protocol.parse_line(line)
        except ProtocolError as error:
            conn.send(protocol.rejected("", protocol.REASON_BAD_REQUEST,
                                        str(error)))
            return
        op = payload["op"]
        request_id = payload["id"]
        started_ns = monotonic_ns()
        if op == "ping":
            conn.send(protocol.pong(request_id))
        elif op == "status":
            conn.send(self._status(request_id))
        elif op == "health":
            conn.send(self._health_event(request_id))
        elif op == "metrics":
            conn.send(protocol.metrics_event(
                request_id, self._scrape_text(), CONTENT_TYPE))
        elif op == "cancel":
            self._cancel(conn, request_id)
        elif op == "campaign":
            self._admit(conn, payload)
        if op != "campaign":
            # Campaign latency is observed end-to-end in _execute; the
            # synchronous ops are timed here.
            self.latency.observe(op, monotonic_ns() - started_ns)

    def _status(self, request_id: str) -> Dict[str, Any]:
        from repro.faultmodel.batch import shared_matrix_cache

        cache = shared_matrix_cache()
        return protocol.status_event(
            request_id,
            admission=self.admission.snapshot(),
            breaker=self.breaker.snapshot(),
            draining=self._draining,
            governed=self.health.governed,
            governor_rung=self.health.rung_label(),
            connections=len(self._conns),
            shared_cache_entries=len(cache) if cache is not None else 0,
            shared_cache_capacity=(cache.entries
                                   if cache is not None else 0),
            latency=self.latency.snapshot(),
            trace_rotations=(self._trace_writer.rotations
                             if self._trace_writer is not None else 0),
            faults_injected=(len(self.fault_plan.log)
                            if self.fault_plan is not None else 0))

    def _telemetry_gauges(self) -> Dict[str, float]:
        """Service-state gauges merged into every scrape.

        Everything the ``status``/``health`` ops report numerically —
        governor rung, admission ledger, breaker counters, shared-cache
        occupancy — flattened to registry-style dotted names so one
        scrape shows the whole service next to the campaign counters.
        """
        from repro.faultmodel.batch import shared_matrix_cache

        gauges: Dict[str, float] = {}
        for key, value in self.admission.snapshot().items():
            if isinstance(value, bool):
                gauges[f"serve.admission.{key}"] = 1.0 if value else 0.0
            elif isinstance(value, (int, float)):
                gauges[f"serve.admission.{key}"] = float(value)
        breaker = self.breaker.snapshot()
        gauges["serve.breaker.open"] = \
            0.0 if breaker.get("state") == "closed" else 1.0
        for key in ("trips", "recoveries", "recent_losses"):
            if key in breaker:
                gauges[f"serve.breaker.{key}"] = float(breaker[key])
        health = self.health.snapshot()
        for key in ("rung_index", "ticks", "assessments",
                    "escalations", "recoveries"):
            value = health.get(key)
            if isinstance(value, (int, float)):
                gauges[f"serve.governor.{key}"] = float(value)
        gauges.setdefault("serve.governor.rung_index", 0.0)
        gauges["serve.governed"] = 1.0 if self.health.governed else 0.0
        gauges["serve.draining"] = 1.0 if self._draining else 0.0
        gauges["serve.connections"] = float(len(self._conns))
        cache = shared_matrix_cache()
        gauges["serve.cache.occupancy"] = \
            float(len(cache)) if cache is not None else 0.0
        gauges["serve.cache.capacity"] = \
            float(cache.entries) if cache is not None else 0.0
        gauges.update(self.latency.gauges())
        return gauges

    def _scrape_text(self) -> str:
        """The Prometheus exposition for this instant's service state."""
        return render_prometheus(get_metrics().to_dict(),
                                 extra_gauges=self._telemetry_gauges())

    async def _handle_metrics_http(self, reader: asyncio.StreamReader,
                                   writer: asyncio.StreamWriter) -> None:
        """Minimal one-shot HTTP/1.0 responder for ``--metrics-port``.

        Any ``GET`` is answered with the scrape text (scrapers poll a
        single fixed path, so routing would be ceremony); other methods
        get 405.  The connection closes after one response.
        """
        try:
            request_line = await reader.readline()
            while True:
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
            method = request_line.split(b" ", 1)[0] if request_line else b""
            if method != b"GET":
                body = b"method not allowed\n"
                head = (b"HTTP/1.0 405 Method Not Allowed\r\n"
                        b"Content-Type: text/plain\r\n")
            else:
                body = self._scrape_text().encode("utf-8")
                head = (b"HTTP/1.0 200 OK\r\nContent-Type: "
                        + CONTENT_TYPE.encode("ascii") + b"\r\n")
            writer.write(head
                         + f"Content-Length: {len(body)}\r\n".encode("ascii")
                         + b"Connection: close\r\n\r\n" + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, BrokenPipeError):
                await writer.wait_closed()

    def _health_event(self, request_id: str) -> Dict[str, Any]:
        snapshot = self.health.snapshot()
        return protocol.health_event(
            request_id,
            governed=snapshot.pop("governed"),
            governor=snapshot,
            admission=self.admission.snapshot(),
            breaker=self.breaker.snapshot(),
            draining=self._draining)

    def _cancel(self, conn: _Connection, request_id: str) -> None:
        job = conn.jobs.get(request_id)
        if job is None:
            conn.send(protocol.rejected(request_id,
                                        protocol.REASON_BAD_REQUEST,
                                        "no such in-flight request"))
            return
        job.token.cancel("client-cancel")

    # ------------------------------------------------------------------
    def _admit(self, conn: _Connection, payload: Dict[str, Any]) -> None:
        request_id = payload["id"]
        if request_id in conn.jobs:
            conn.send(protocol.rejected(
                request_id, protocol.REASON_BAD_REQUEST,
                "request id already in flight on this connection"))
            return
        try:
            request = protocol.build_campaign_request(payload)
        except ProtocolError as error:
            conn.send(protocol.rejected(
                request_id, protocol.REASON_BAD_REQUEST, str(error)))
            return
        abort_injected = False
        if self.fault_plan is not None:
            event = self.fault_plan.roll("serve.request", request_id)
            if event is not None and event.kind == "reject":
                conn.send(protocol.rejected(
                    request_id, protocol.REASON_INJECTED,
                    "injected serve.request:reject"))
                return
            abort_injected = event is not None and event.kind == "abort"
        if self.health.should_shed():
            # Governor rung >= shed: capacity may exist, but resources
            # do not.  Refuse with an explicit verdict the client can
            # distinguish from overload and back off on.
            self.admission.record_shed()
            conn.send(protocol.rejected(
                request_id, protocol.REASON_SHED,
                f"resource governor shedding load "
                f"(rung {self.health.rung_label()}); "
                f"poll the health op and retry after recovery"))
            return
        verdict = self.admission.try_admit()
        if verdict != ADMIT:
            reason = protocol.REASON_DRAINING if verdict == DRAINING \
                else protocol.REASON_OVERLOADED
            conn.send(protocol.rejected(
                request_id, reason,
                f"service {verdict}: "
                f"{self.admission.running} running, "
                f"{self.admission.queued} queued"))
            return
        job = _Job(request=request, conn=conn,
                   abort_injected=abort_injected,
                   modules_total=len(request.config.module_specs()))
        conn.jobs[request_id] = job
        self._jobs.add(job)
        conn.send(protocol.accepted(request_id))
        self._queue.put_nowait(job)

    # ------------------------------------------------------------------
    # Execution (consumer tasks)
    # ------------------------------------------------------------------
    async def _consume(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                return
            if job.token.cancelled():
                # Cancelled while queued (drain or client cancel): the
                # rejection is explicit, never a silent drop.
                self.admission.forget_queued()
                self._finish_job(job, self._cancel_error(job))
                if job.token.reason == "drain":
                    self._record_drained(job, "queued")
                continue
            self.admission.begin_run()
            job.started = True
            try:
                await self._execute(job)
            finally:
                self.admission.finish()

    def _cancel_error(self, job: _Job) -> Dict[str, Any]:
        reason = _CANCEL_REASONS.get(job.token.reason,
                                     protocol.ERROR_CANCELLED)
        return protocol.error_event(
            job.request.id, reason,
            f"request cancelled ({job.token.reason})")

    def _finish_job(self, job: _Job, event: Optional[Dict[str, Any]]) -> None:
        if event is not None:
            job.conn.send(event)
        self._jobs.discard(job)
        job.conn.jobs.pop(job.request.id, None)

    async def _execute(self, job: _Job) -> None:
        loop = asyncio.get_running_loop()
        request = job.request
        metrics = get_metrics()
        if job.abort_injected:
            # Injected serve.request:abort — accepted, then cleanly
            # aborted before any unit runs (the client gets an explicit
            # error event, never a half-result).
            job.token.cancel("aborted")
        workers = request.workers
        if workers > 1 and not self.breaker.allow_parallel():
            workers = 1
            job.degraded = True
            metrics.counter("serve.degraded_serial").inc()

        def on_supervision(event) -> None:
            if event.kind == "respawn":
                job.pool_lost = True
                self.breaker.record_loss()

        def on_module(module_id: str, payload: Dict[str, Any],
                      resumed: bool) -> None:
            loop.call_soon_threadsafe(
                self._stream_module, job, module_id, payload, resumed)

        tracer: Optional[Tracer] = None
        ctx: Optional[TraceContext] = None
        if self._trace_writer is not None and request.trace:
            # Request-scoped tracing: a private tracer rides the task
            # context into the runner thread (bound_recorders), so this
            # request's spans never mingle with a concurrent request's.
            self._request_seq += 1
            tracer = Tracer()
            ctx = TraceContext(request_id=request.id,
                               prefix=f"r{self._request_seq}")
        runner = CampaignRunner(
            request.config,
            checkpoint_dir=request.checkpoint_dir,
            resume=request.resume,
            fault_plan=self._request_fault_plan(request),
            retry=self.retry,
            workers=workers,
            supervisor=SupervisorPolicy(
                module_deadline_s=request.config.module_deadline_s),
            cancel=job.token,
            on_module=on_module,
            on_supervision=on_supervision,
            governor=self.governor,
            shared_cache_entries=self.shared_cache_entries
            if self.shared_cache_entries > 0 else None,
            row_cache_rows=self.row_cache_rows,
            trace=ctx)

        def run_campaign():
            if tracer is None:
                return runner.run(request.study)
            with bound_recorders(tracer=tracer):
                with tracer.span("serve.request", request=request.id,
                                 study=request.study, workers=workers):
                    return runner.run(request.study)

        deadline_handle = None
        if request.deadline_s is not None:
            deadline_handle = loop.call_later(
                request.deadline_s, job.token.cancel, "deadline")
        started_ns = monotonic_ns()
        try:
            try:
                outcome = await asyncio.to_thread(run_campaign)
            except CampaignCancelled:
                metrics.counter("serve.requests.cancelled").inc()
                self._finish_job(job, self._cancel_error(job))
                if job.token.reason == "drain":
                    self._record_drained(job, "interrupted")
                return
            except CampaignParked as error:
                # The governor parked the campaign on its checkpoints;
                # the client resubmits with resume=true once health
                # recovers.
                metrics.counter("serve.requests.parked").inc()
                self._finish_job(job, protocol.error_event(
                    request.id, protocol.ERROR_PARKED, str(error)))
                return
            except ConfigError as error:
                metrics.counter("serve.requests.failed").inc()
                self._finish_job(job, protocol.error_event(
                    request.id, protocol.ERROR_INTERNAL, str(error)))
                return
            except Exception as error:  # noqa: BLE001 - service must not die
                metrics.counter("serve.requests.failed").inc()
                self._finish_job(job, protocol.error_event(
                    request.id, protocol.ERROR_INTERNAL,
                    f"{type(error).__name__}: {error}"))
                return
            finally:
                if deadline_handle is not None:
                    deadline_handle.cancel()
            if workers > 1 and not job.pool_lost:
                self.breaker.record_success()
            metrics.counter("serve.requests.completed").inc()
            self._finish_job(job, protocol.result_event(
                request.id, ok=outcome.ok, degraded=job.degraded,
                result=result_to_dict(outcome.result),
                report=outcome.degradation_report(),
                stats={
                    "modules_completed": outcome.stats.modules_completed,
                    "modules_resumed": outcome.stats.modules_resumed,
                    "modules_quarantined": len(outcome.quarantined),
                    "units_run": outcome.stats.units_run,
                    "units_retried": outcome.stats.units_retried,
                    "workers": workers,
                }))
        finally:
            # Telemetry epilogue — runs on every exit path so cancelled
            # and failed requests still leave a latency sample and their
            # partial trace behind.
            self.latency.observe("campaign", monotonic_ns() - started_ns)
            if tracer is not None and ctx is not None \
                    and self._trace_writer is not None:
                self._trace_writer.append(
                    reroot_spans(tracer.to_dicts(), ctx.prefix))

    def _request_fault_plan(self, request: CampaignRequest
                            ) -> Optional[FaultPlan]:
        """A fresh per-request plan, never shared across requests.

        The request's own ``fault_plan`` wins; otherwise campaign-level
        specs from the service plan apply (the ``serve.*`` specs stay
        with the service — rolling them inside the runner would be
        meaningless).  A fresh plan per request keeps the opportunity
        counters request-local, so request determinism never depends on
        what other clients submitted.
        """
        from repro.faults.plan import parse_fault_plan

        if request.fault_plan:
            seed = request.fault_seed if request.fault_seed is not None \
                else request.config.seed
            return parse_fault_plan(request.fault_plan, seed=seed)
        if self.fault_plan is None:
            return None
        specs = tuple(spec for spec in self.fault_plan.specs
                      if not spec.site.startswith("serve."))
        if not specs:
            return None
        return FaultPlan(seed=self.fault_plan.seed, specs=specs)

    def _stream_module(self, job: _Job, module_id: str,
                       payload: Dict[str, Any], resumed: bool) -> None:
        """Forward one module payload to the client (event-loop thread)."""
        if self.fault_plan is not None:
            event = self.fault_plan.roll("serve.stream",
                                         job.request.id, module_id)
            if event is not None:
                # Injected stream-write failure: the incremental event is
                # lost, but the final result event still carries every
                # module — degradation, not data loss.
                get_metrics().counter("serve.stream.dropped").inc()
                return
        job.modules_streamed += 1
        job.flips += _count_flips(payload)
        job.conn.send(protocol.module_event(job.request.id, module_id,
                                            payload, resumed))
        job.conn.send(protocol.progress_event(
            job.request.id, module_id=module_id,
            done=job.modules_streamed, total=job.modules_total,
            flips=job.flips, rung=self.health.rung_label()))


def _count_flips(payload: Dict[str, Any]) -> int:
    """Flips observed in one module payload (0 when the shape is foreign).

    Progress events are advisory; a study whose payload carries no
    ``flip_cells`` map simply reports zero rather than failing the
    stream.
    """
    cells = payload.get("flip_cells")
    if not isinstance(cells, dict):
        return 0
    return sum(len(group) for group in cells.values()
               if isinstance(group, (list, tuple, set)))
