"""Service-side face of the resource governor: health checks and shedding.

``deeprh serve`` owns one process-wide
:class:`~repro.runner.governor.ResourceGovernor` and wires it in three
places: a periodic **health task** ticks the governor between requests
(so pressure is noticed even while the service idles), the **admission
path** asks :meth:`HealthMonitor.should_shed` before any queueing
decision and answers with an explicit 429-style ``shed`` verdict, and
the **``health`` protocol op** exposes the full ladder state to clients
so a rejected caller can poll for recovery instead of hammering blindly.

The monitor also applies the *shrink-caches* rung to the service's
installed :class:`~repro.faultmodel.batch.SharedMatrixCache` in place —
a long-lived service cannot wait for the next campaign to construct a
smaller cache; memory must come back now.  An ungoverned service gets a
null monitor whose checks cost one attribute read.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs import get_metrics
from repro.runner.governor import (
    RUNG_NORMAL,
    ResourceGovernor,
    rung_name,
)


class HealthMonitor:
    """Bridges one governor into the service's admission and status paths."""

    def __init__(self, governor: Optional[ResourceGovernor] = None) -> None:
        self.governor = governor
        #: SharedMatrixCache bound before any governed shrink (None until
        #: the first shrink; used to restore on recovery).
        self._unshrunk_entries: Optional[int] = None

    @property
    def governed(self) -> bool:
        return self.governor is not None

    # ------------------------------------------------------------------
    def tick(self) -> int:
        """One health-task heartbeat; returns the current rung."""
        if self.governor is None:
            return RUNG_NORMAL
        rung = self.governor.tick()
        self.apply_cache_policy()
        return rung

    def rung(self) -> int:
        return self.governor.rung() if self.governor is not None \
            else RUNG_NORMAL

    def rung_label(self) -> str:
        return rung_name(self.rung())

    def should_shed(self) -> bool:
        return self.governor is not None and self.governor.should_shed()

    # ------------------------------------------------------------------
    def apply_cache_policy(self) -> None:
        """Clamp (or restore) the installed shared cache to the rung.

        Idempotent per rung: shrinking evicts immediately via
        :meth:`~repro.faultmodel.batch.SharedMatrixCache.resize`; once
        the ladder recovers below *shrink-caches* the original bound is
        restored (entries refill lazily as campaigns run).
        """
        if self.governor is None:
            return
        from repro.faultmodel.batch import shared_matrix_cache
        cache = shared_matrix_cache()
        if cache is None:
            return
        shrunk = self.governor.cache_entries_for(None)
        if shrunk is not None:
            if self._unshrunk_entries is None:
                self._unshrunk_entries = cache.entries
            if cache.entries > shrunk:
                evicted = cache.resize(shrunk)
                metrics = get_metrics()
                metrics.counter("serve.cache.shrunk").inc()
                if evicted:
                    metrics.counter(
                        "serve.cache.shrink_evictions").inc(evicted)
                self._record_resize(cache)
        elif self._unshrunk_entries is not None:
            if cache.entries < self._unshrunk_entries:
                cache.resize(self._unshrunk_entries)
                get_metrics().counter("serve.cache.restored").inc()
                self._record_resize(cache)
            self._unshrunk_entries = None

    @staticmethod
    def _record_resize(cache: Any) -> None:
        """Publish the post-resize bound so scrapes see governor shrinks.

        ``serve.cache.shrunk``/``restored`` count the transitions; these
        gauges carry the resulting capacity and occupancy, making a
        governor-driven shrink visible in exposition output without
        correlating counter deltas.
        """
        metrics = get_metrics()
        metrics.gauge("serve.cache.resize.capacity").set(cache.entries)
        metrics.gauge("serve.cache.resize.occupancy").set(len(cache))

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe health payload for the ``health`` op."""
        if self.governor is None:
            return {"governed": False, "rung": rung_name(RUNG_NORMAL)}
        snap = self.governor.snapshot()
        snap["governed"] = True
        return snap
