"""Per-op request latency tracking for ``deeprh serve``.

The deterministic :class:`~repro.obs.metrics.MetricsRegistry` may only
hold seed-deterministic values, so wall-clock request latencies cannot
live there.  :class:`LatencyTracker` is the serve-side home for them: a
bounded sliding window of durations per protocol op, summarized as
nearest-rank p50/p95 for the ``status`` op and the scrape endpoint.
Timestamps come from :func:`repro.obs.clock.monotonic_ns` — the one
allowlisted wall-clock seam — and nothing on the result path reads them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from repro.units import NS_PER_MS

#: How many recent samples each op keeps (old samples slide off).
DEFAULT_WINDOW = 256


def _nearest_rank(ordered: list, quantile: float) -> float:
    """Nearest-rank quantile of an ascending list (q in [0, 1])."""
    if not ordered:
        return 0.0
    index = -(-int(quantile * 1000 * len(ordered)) // 1000)  # ceil(q * n)
    return ordered[min(len(ordered), max(1, index)) - 1]


class LatencyTracker:
    """Sliding-window latency percentiles, one window per op name."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._samples: Dict[str, Deque[int]] = {}
        self._counts: Dict[str, int] = {}

    def observe(self, op: str, duration_ns: int) -> None:
        """Record one completed request's wall-clock duration."""
        window = self._samples.get(op)
        if window is None:
            window = self._samples[op] = deque(maxlen=self.window)
        window.append(int(duration_ns))
        self._counts[op] = self._counts.get(op, 0) + 1

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-op ``{count, window, p50_ms, p95_ms, max_ms}`` summary.

        ``count`` is the lifetime observation count; percentiles cover
        only the current window.  Ops are emitted in sorted order so the
        snapshot renders identically for identical inputs.
        """
        summary: Dict[str, Dict[str, float]] = {}
        for op in sorted(self._samples):
            ordered = sorted(self._samples[op])
            summary[op] = {
                "count": self._counts[op],
                "window": len(ordered),
                "p50_ms": _nearest_rank(ordered, 0.50) / NS_PER_MS,
                "p95_ms": _nearest_rank(ordered, 0.95) / NS_PER_MS,
                "max_ms": ordered[-1] / NS_PER_MS,
            }
        return summary

    def gauges(self) -> Dict[str, float]:
        """Scrape-friendly flat gauges (``serve.latency.<op>.p50_ms`` …)."""
        flat: Dict[str, float] = {}
        for op, stats in self.snapshot().items():
            for field in ("p50_ms", "p95_ms", "max_ms"):
                flat[f"serve.latency.{op}.{field}"] = stats[field]
        return flat
