"""The NDJSON wire protocol of ``deeprh serve``.

One request or response per line, UTF-8 JSON, ``\\n``-terminated, over a
Unix domain socket.  Requests carry an ``op`` plus a client-chosen ``id``
echoed on every response, so one connection can interleave campaigns.

Requests::

    {"op": "campaign", "id": "r1", "study": "temperature",
     "preset": "quick", "seed": 7, "overrides": {"rows_per_region": 10},
     "workers": 2, "deadline_s": 120.0,
     "checkpoint_dir": "/ckpt/r1", "resume": false,
     "fault_plan": "campaign.unit=0.05", "fault_seed": 7}
    {"op": "cancel", "id": "r1"}
    {"op": "status", "id": "s1"}
    {"op": "health", "id": "h1"}
    {"op": "metrics", "id": "m1"}
    {"op": "ping", "id": "p1"}

Responses (``event`` discriminates)::

    {"event": "accepted", "id": "r1"}
    {"event": "rejected", "id": "r1", "reason": "overloaded", "detail": ...}
    {"event": "module",  "id": "r1", "module_id": "A0", "resumed": false,
     "payload": {...}}
    {"event": "progress", "id": "r1", "module_id": "A0", "done": 1,
     "total": 4, "flips": 128, "rung": "full"}
    {"event": "metrics", "id": "m1", "content_type": "text/plain; ...",
     "text": "# TYPE deeprh_... counter\\n..."}
    {"event": "result",  "id": "r1", "ok": true, "degraded": false,
     "result": {...}, "report": "...", "stats": {...}}
    {"event": "error",   "id": "r1", "reason": "deadline", "detail": ...}
    {"event": "status",  "id": "s1", ...}
    {"event": "health",  "id": "h1", "governed": true, "governor": {...},
     "admission": {...}, "breaker": {...}, "draining": false}
    {"event": "pong",    "id": "p1"}

Rejection reasons are :data:`REASON_OVERLOADED`, :data:`REASON_DRAINING`,
:data:`REASON_SHED` (the resource governor's 429-style load-shedding
verdict) and :data:`REASON_BAD_REQUEST` (plus :data:`REASON_INJECTED`
under a ``serve.request:reject`` fault).  Every response is encoded
canonically —
sorted keys, no whitespace — so "identical result bytes" is a property of
the wire, not of any particular JSON emitter.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core import config as config_mod
from repro.core.config import StudyConfig
from repro.errors import ConfigError

#: Studies the campaign runner knows how to drive.
STUDIES = ("temperature", "acttime", "spatial")

#: Request ops.
OPS = ("campaign", "cancel", "status", "health", "metrics", "ping")

#: Rejection reasons.
REASON_OVERLOADED = "overloaded"
REASON_DRAINING = "draining"
REASON_BAD_REQUEST = "bad-request"
REASON_INJECTED = "injected"
#: The resource governor is shedding load (degradation-ladder rung
#: ``shed`` or worse); retry once the ``health`` op reports recovery.
REASON_SHED = "shed"

#: Error-event reasons for accepted requests that did not produce a result.
ERROR_DEADLINE = "deadline"
ERROR_CANCELLED = "cancelled"
ERROR_DRAIN = "drain"
ERROR_ABORTED = "aborted"
ERROR_INTERNAL = "internal"
#: The governor parked the campaign on its checkpoints; resubmit with the
#: same checkpoint_dir and resume=true once resources recover.
ERROR_PARKED = "parked"

_TUPLE_FIELDS = ("temperatures_c", "t_agg_on_grid_ns", "t_agg_off_grid_ns")
_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(StudyConfig))


class ProtocolError(ConfigError):
    """A request line the service cannot honor; maps to ``bad-request``."""


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignRequest:
    """One validated campaign submission."""

    id: str
    study: str
    config: StudyConfig
    workers: int = 1
    deadline_s: Optional[float] = None
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    fault_plan: Optional[str] = None
    fault_seed: Optional[int] = None
    #: Client opted into request-scoped tracing (spans exported to the
    #: service's ``--trace`` directory; a no-op when tracing is off).
    trace: bool = False

    def describe(self) -> Dict[str, Any]:
        """Resubmittable request dict (for the drain resume manifest).

        The config is emitted as ``preset`` + ``seed`` + the overrides
        that differ from that preset, so resubmitting the entry rebuilds
        the *exact* configuration the request ran with — a resumed
        checkpoint directory refuses any other fingerprint.
        """
        preset_name = self.config.name \
            if self.config.name in config_mod.PRESETS else "quick"
        base = config_mod.preset(preset_name)
        overrides: Dict[str, Any] = {}
        for field in dataclasses.fields(StudyConfig):
            if field.name == "seed":
                continue
            value = getattr(self.config, field.name)
            if value != getattr(base, field.name):
                overrides[field.name] = list(value) \
                    if isinstance(value, tuple) else value
        payload: Dict[str, Any] = {
            "op": "campaign", "id": self.id, "study": self.study,
            "preset": preset_name, "seed": self.config.seed,
            "workers": self.workers,
        }
        if overrides:
            payload["overrides"] = overrides
        if self.deadline_s is not None:
            payload["deadline_s"] = self.deadline_s
        if self.checkpoint_dir is not None:
            payload["checkpoint_dir"] = self.checkpoint_dir
            payload["resume"] = True
        if self.fault_plan is not None:
            payload["fault_plan"] = self.fault_plan
        if self.fault_seed is not None:
            payload["fault_seed"] = self.fault_seed
        if self.trace:
            payload["trace"] = True
        return payload


def parse_line(raw: str) -> Dict[str, Any]:
    """Decode one request line into a dict with a valid ``op`` and ``id``."""
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"request is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; choose from {OPS}")
    request_id = payload.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("request needs a non-empty string 'id'")
    return payload


def build_campaign_request(payload: Dict[str, Any]) -> CampaignRequest:
    """Validate a ``campaign`` op into a typed request.

    Raises :class:`ProtocolError` (a :class:`~repro.errors.ConfigError`)
    with a client-presentable message on any invalid field.
    """
    study = payload.get("study")
    if study not in STUDIES:
        raise ProtocolError(f"unknown study {study!r}; "
                            f"choose from {STUDIES}")
    preset = payload.get("preset", "quick")
    if preset not in config_mod.PRESETS:
        raise ProtocolError(f"unknown preset {preset!r}; choose from "
                            f"{sorted(config_mod.PRESETS)}")
    config = config_mod.preset(preset)
    overrides = dict(payload.get("overrides") or {})
    seed = payload.get("seed")
    if seed is not None:
        overrides["seed"] = int(seed)
    for name, value in list(overrides.items()):
        if name not in _CONFIG_FIELDS:
            raise ProtocolError(f"unknown config override {name!r}")
        if name in _TUPLE_FIELDS:
            overrides[name] = tuple(float(v) for v in value)
    try:
        if overrides:
            config = config.scaled(**overrides)
    except (ConfigError, TypeError, ValueError) as error:
        raise ProtocolError(f"bad config overrides: {error}") from None
    workers = int(payload.get("workers", 1))
    if workers < 1:
        raise ProtocolError("workers must be >= 1")
    deadline_s = payload.get("deadline_s")
    if deadline_s is not None:
        deadline_s = float(deadline_s)
        if deadline_s <= 0:
            raise ProtocolError("deadline_s must be positive")
    fault_seed = payload.get("fault_seed")
    return CampaignRequest(
        id=payload["id"], study=study, config=config, workers=workers,
        deadline_s=deadline_s,
        checkpoint_dir=payload.get("checkpoint_dir"),
        resume=bool(payload.get("resume", False)),
        fault_plan=payload.get("fault_plan"),
        fault_seed=int(fault_seed) if fault_seed is not None else None,
        trace=bool(payload.get("trace", False)))


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def encode(event: Dict[str, Any]) -> bytes:
    """Canonical NDJSON bytes: sorted keys, compact separators."""
    return (json.dumps(event, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def canonical_result_bytes(result_dict: Dict[str, Any]) -> bytes:
    """The byte-determinism contract: one canonical encoding of a result.

    ``deeprh campaign --save-json``, the serve ``result`` event and the
    smoke/bench tools all compare results through this function, so
    "byte-identical" means the same thing everywhere.
    """
    return json.dumps(result_dict, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def accepted(request_id: str) -> Dict[str, Any]:
    return {"event": "accepted", "id": request_id}


def rejected(request_id: str, reason: str, detail: str = "") -> Dict[str, Any]:
    return {"event": "rejected", "id": request_id, "reason": reason,
            "detail": detail}


def module_event(request_id: str, module_id: str, payload: Dict[str, Any],
                 resumed: bool) -> Dict[str, Any]:
    return {"event": "module", "id": request_id, "module_id": module_id,
            "resumed": bool(resumed), "payload": payload}


def result_event(request_id: str, *, ok: bool, degraded: bool,
                 result: Dict[str, Any], report: str,
                 stats: Dict[str, Any]) -> Dict[str, Any]:
    return {"event": "result", "id": request_id, "ok": bool(ok),
            "degraded": bool(degraded), "result": result,
            "report": report, "stats": stats}


def progress_event(request_id: str, *, module_id: str, done: int,
                   total: int, flips: int, rung: str) -> Dict[str, Any]:
    """Streamed after each finished module: how far along a campaign is."""
    return {"event": "progress", "id": request_id, "module_id": module_id,
            "done": int(done), "total": int(total), "flips": int(flips),
            "rung": rung}


def metrics_event(request_id: str, text: str,
                  content_type: str) -> Dict[str, Any]:
    """The scrape exposition, answered to the ``metrics`` op."""
    return {"event": "metrics", "id": request_id,
            "content_type": content_type, "text": text}


def error_event(request_id: str, reason: str, detail: str = "") -> Dict[str, Any]:
    return {"event": "error", "id": request_id, "reason": reason,
            "detail": detail}


def status_event(request_id: str, **fields: Any) -> Dict[str, Any]:
    event: Dict[str, Any] = {"event": "status", "id": request_id}
    event.update(fields)
    return event


def health_event(request_id: str, **fields: Any) -> Dict[str, Any]:
    event: Dict[str, Any] = {"event": "health", "id": request_id}
    event.update(fields)
    return event


def pong(request_id: str) -> Dict[str, Any]:
    return {"event": "pong", "id": request_id}
