"""Circuit breaker around worker-pool respawn storms.

A long-lived campaign service keeps accepting requests after the host
starts killing worker processes (OOM pressure, cgroup limits, a bad
kernel day).  Each parallel campaign then burns its requeue budget
respawning pools that die again, which is slower *and* noisier than
simply running serially.  The breaker watches pool-loss signals from the
supervision log and, when losses cluster, degrades the service to serial
execution — which is byte-identical by construction, just slower — until
a trial request proves parallel dispatch healthy again.

Classic three-state machine:

* ``closed``    — healthy; parallel dispatch allowed.  Pool losses inside
  a sliding window are counted; reaching the threshold trips the breaker.
* ``open``      — tripped; every request degrades to serial until the
  cooldown elapses.
* ``half-open`` — cooldown over; exactly one trial request may run
  parallel.  Success closes the breaker, another loss re-opens it.

Thread-safety: the supervision log invokes listeners from whatever thread
runs the campaign, while ``allow_parallel`` is called from the service's
event loop — all transitions take the internal lock.  The clock is
injectable (seconds, monotonic) so tests drive transitions virtually;
the default reads :func:`repro.obs.clock.monotonic_ns`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.obs import get_metrics
from repro.obs.clock import monotonic_ns

#: Breaker states, in escalation order.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


def _default_clock() -> float:
    return monotonic_ns() / 1e9


@dataclass(frozen=True)
class BreakerPolicy:
    """When to trip, how long to back off, how to probe recovery.

    ``threshold`` pool losses within ``window_s`` seconds trip the
    breaker; it stays open for ``cooldown_s`` seconds before offering a
    single half-open trial.
    """

    threshold: int = 3
    window_s: float = 60.0
    cooldown_s: float = 120.0

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ConfigError("breaker threshold must be >= 1")
        if self.window_s <= 0 or self.cooldown_s <= 0:
            raise ConfigError("breaker window_s/cooldown_s must be positive")


class CircuitBreaker:
    """Trips on clustered worker-pool losses; recovers via one trial."""

    def __init__(self, policy: Optional[BreakerPolicy] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self.clock = clock if clock is not None else _default_clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._losses: List[float] = []
        self._opened_at = 0.0
        self._trial_inflight = False
        self.trips = 0
        self.recoveries = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state(self.clock())

    def _effective_state(self, now: float) -> str:
        """State after applying any due cooldown expiry (lock held)."""
        if self._state == OPEN and \
                now - self._opened_at >= self.policy.cooldown_s:
            self._state = HALF_OPEN
            self._trial_inflight = False
        return self._state

    # ------------------------------------------------------------------
    def record_loss(self) -> None:
        """One worker-pool loss (respawn / worker-lost supervision event)."""
        now = self.clock()
        with self._lock:
            state = self._effective_state(now)
            if state == HALF_OPEN:
                # The trial failed: straight back to open, fresh cooldown.
                self._trip(now)
                return
            if state == OPEN:
                return
            self._losses.append(now)
            cutoff = now - self.policy.window_s
            self._losses = [t for t in self._losses if t >= cutoff]
            if len(self._losses) >= self.policy.threshold:
                self._trip(now)

    def _trip(self, now: float) -> None:
        self._state = OPEN
        self._opened_at = now
        self._losses = []
        self._trial_inflight = False
        self.trips += 1
        get_metrics().counter("serve.breaker.trips").inc()

    # ------------------------------------------------------------------
    def allow_parallel(self) -> bool:
        """May the next request dispatch parallel workers?

        In ``half-open`` exactly one caller gets True (the trial); callers
        granted a trial must later report :meth:`record_success` or a
        :meth:`record_loss`.
        """
        with self._lock:
            state = self._effective_state(self.clock())
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._trial_inflight:
                self._trial_inflight = True
                return True
            return False

    def record_success(self) -> None:
        """A parallel request finished without losing its pool."""
        with self._lock:
            state = self._effective_state(self.clock())
            if state == HALF_OPEN:
                self._state = CLOSED
                self._losses = []
                self._trial_inflight = False
                self.recoveries += 1
                get_metrics().counter("serve.breaker.recoveries").inc()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Status-op view: state plus lifetime trip/recovery counts."""
        with self._lock:
            state = self._effective_state(self.clock())
            return {"state": state, "trips": self.trips,
                    "recoveries": self.recoveries,
                    "recent_losses": len(self._losses)}
