"""``deeprh top`` — a polling terminal view of a running service.

One frame per poll interval, composed from the service's own ``status``,
``health`` and ``metrics`` ops over the NDJSON socket: admission ledger,
governor rung, circuit-breaker state, cache hit rates from the scrape
exposition, and per-op request latencies.  Rendering is a pure function
of the three payloads (:func:`render_frame`), so tests cover the view
without a terminal or a clock; the CLI loop around it only polls,
clears, and prints.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.expo import parse_prometheus


def _rate(samples: Dict[str, float], hit: str, miss: str) -> Optional[float]:
    hits = samples.get(hit, 0.0)
    total = hits + samples.get(miss, 0.0)
    return hits / total if total else None


def _fmt_rate(rate: Optional[float]) -> str:
    return f"{rate:.1%}" if rate is not None else "n/a"


def render_frame(status: Dict[str, Any], health: Dict[str, Any],
                 metrics_text: str, *, poll: int = 0) -> str:
    """One ``deeprh top`` frame from the three op payloads.

    Tolerant of missing fields — an older server (or a degraded one)
    renders a sparser frame, never a crash.
    """
    admission = status.get("admission", {})
    breaker = status.get("breaker", {})
    latency = status.get("latency", {})
    samples = parse_prometheus(metrics_text) if metrics_text else {}

    lines: List[str] = []
    lines.append(f"deeprh top — poll {poll}"
                 + ("  [DRAINING]" if status.get("draining") else ""))
    lines.append(
        f"  campaigns : {admission.get('running', 0)} running, "
        f"{admission.get('queued', 0)} queued "
        f"(capacity {admission.get('max_inflight', '?')}+"
        f"{admission.get('max_queue', '?')}); "
        f"{admission.get('completed', 0)} completed, "
        f"{admission.get('admitted', 0)} admitted")
    rejected = (admission.get("rejected_overloaded", 0)
                + admission.get("rejected_draining", 0)
                + admission.get("rejected_shed", 0))
    lines.append(
        f"  rejected  : {rejected} total "
        f"({admission.get('rejected_overloaded', 0)} overloaded, "
        f"{admission.get('rejected_shed', 0)} shed, "
        f"{admission.get('rejected_draining', 0)} draining)")
    governed = health.get("governed", status.get("governed", False))
    rung = status.get("governor_rung",
                      health.get("governor", {}).get("rung", "normal"))
    lines.append(f"  governor  : rung {rung}"
                 + ("" if governed else " (ungoverned)"))
    lines.append(
        f"  breaker   : {breaker.get('state', '?')} "
        f"({breaker.get('trips', 0)} trip(s), "
        f"{breaker.get('recent_losses', 0)} recent loss(es))")
    lines.append(
        f"  cache     : {status.get('shared_cache_entries', 0)}/"
        f"{status.get('shared_cache_capacity', 0)} entries; hit rates: "
        f"oracle {_fmt_rate(_rate(samples, 'deeprh_oracle_cache_hit_total', 'deeprh_oracle_cache_miss_total'))}, "
        f"shared {_fmt_rate(_rate(samples, 'deeprh_oracle_shared_cache_hit_total', 'deeprh_oracle_shared_cache_miss_total'))}")
    lines.append(f"  conns     : {status.get('connections', 0)} connected, "
                 f"{status.get('trace_rotations', 0)} trace rotation(s), "
                 f"{status.get('faults_injected', 0)} fault(s) injected")
    if latency:
        lines.append("  latency   :")
        for op in sorted(latency):
            stats = latency[op]
            lines.append(
                f"    {op:10s} p50 {stats.get('p50_ms', 0.0):>8.2f}ms  "
                f"p95 {stats.get('p95_ms', 0.0):>8.2f}ms  "
                f"max {stats.get('max_ms', 0.0):>8.2f}ms  "
                f"({stats.get('count', 0)} req(s))")
    else:
        lines.append("  latency   : no requests observed yet")
    return "\n".join(lines)


def poll_once(client, *, poll: int = 0) -> str:
    """Gather one frame's payloads from a connected ServeClient."""
    status = client.status()
    health = client.health()
    metrics_text = client.metrics()
    return render_frame(status, health, metrics_text, poll=poll)
