"""Campaign-as-a-service: the resilient runner behind a Unix socket.

``deeprh serve`` turns the one-shot campaign CLI into a long-lived,
admission-controlled service.  See :mod:`repro.serve.server` for the
robustness model (bounded admission, deadlines, circuit breaker,
graceful drain) and :mod:`repro.serve.protocol` for the NDJSON wire
format.
"""

from repro.serve.admission import ADMIT, DRAINING, OVERLOADED, AdmissionController
from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.serve.client import ServeClient, ServeClientError, ServeReply
from repro.serve.protocol import (
    CampaignRequest,
    ProtocolError,
    canonical_result_bytes,
)
from repro.serve.server import CampaignService

__all__ = [
    "ADMIT",
    "CLOSED",
    "DRAINING",
    "HALF_OPEN",
    "OPEN",
    "OVERLOADED",
    "AdmissionController",
    "BreakerPolicy",
    "CampaignRequest",
    "CampaignService",
    "CircuitBreaker",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "ServeReply",
    "canonical_result_bytes",
]
