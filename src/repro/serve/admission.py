"""Admission control for the campaign service: bounded, honest, drainable.

A service that accepts every request eventually queues hours of work it
cannot deliver; one that silently drops requests is worse.  The
controller enforces two explicit bounds — ``max_inflight`` campaigns
executing and ``max_queue`` admitted-but-waiting — and answers every
admission attempt with one of three verdicts:

* :data:`ADMIT`      — the request may run (or wait in the bounded queue);
* :data:`OVERLOADED` — both bounds are full; the client receives a
  429-style rejection *now* instead of an unbounded wait;
* :data:`DRAINING`   — the service is shutting down and admits nothing.

All calls happen on the service's event-loop thread, so plain counters
suffice; the class stays synchronous and directly unit-testable.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError
from repro.obs import get_metrics

#: Admission verdicts.
ADMIT = "admit"
OVERLOADED = "overloaded"
DRAINING = "draining"


class AdmissionController:
    """Bounded running/queued bookkeeping with explicit rejection."""

    def __init__(self, max_inflight: int = 2, max_queue: int = 8) -> None:
        if max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ConfigError("max_queue must be >= 0")
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.running = 0
        self.queued = 0
        self.admitted_total = 0
        self.rejected_overloaded = 0
        self.rejected_draining = 0
        self.rejected_shed = 0
        self.completed_total = 0
        self.draining = False

    # ------------------------------------------------------------------
    def try_admit(self) -> str:
        """Verdict for one incoming campaign request."""
        metrics = get_metrics()
        if self.draining:
            self.rejected_draining += 1
            metrics.counter("serve.rejected.draining").inc()
            return DRAINING
        if self.running + self.queued >= self.max_inflight + self.max_queue:
            self.rejected_overloaded += 1
            metrics.counter("serve.rejected.overloaded").inc()
            return OVERLOADED
        self.queued += 1
        self.admitted_total += 1
        metrics.counter("serve.admitted").inc()
        metrics.gauge("serve.queue.depth").set(self.queued)
        return ADMIT

    def record_shed(self) -> None:
        """The resource governor refused this request before admission.

        Shedding happens *upstream* of :meth:`try_admit` — capacity may
        exist, but the process is resource-starved — so it keeps its own
        counter instead of riding ``rejected_overloaded``.
        """
        self.rejected_shed += 1
        get_metrics().counter("serve.rejected.shed").inc()

    def begin_run(self) -> None:
        """An admitted request left the queue and started executing."""
        self.queued -= 1
        self.running += 1
        get_metrics().gauge("serve.queue.depth").set(self.queued)

    def finish(self) -> None:
        """A running request completed (successfully or not)."""
        self.running -= 1
        self.completed_total += 1

    def forget_queued(self) -> None:
        """An admitted-but-never-run request was abandoned (drain)."""
        self.queued -= 1
        get_metrics().gauge("serve.queue.depth").set(self.queued)

    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting; idempotent."""
        self.draining = True

    def idle(self) -> bool:
        return self.running == 0 and self.queued == 0

    def snapshot(self) -> Dict[str, object]:
        """Status-op view of the admission ledger."""
        return {"running": self.running, "queued": self.queued,
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "admitted": self.admitted_total,
                "completed": self.completed_total,
                "rejected_overloaded": self.rejected_overloaded,
                "rejected_draining": self.rejected_draining,
                "rejected_shed": self.rejected_shed,
                "draining": self.draining}
