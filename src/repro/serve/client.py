"""A small blocking client for ``deeprh serve``.

Deliberately synchronous and stdlib-only: tests, the smoke tool and the
throughput benchmark each open one plain ``AF_UNIX`` socket per logical
client and read NDJSON lines until their request concludes.  Concurrency
in those callers comes from threads or multiple processes, never from
sharing one client between threads.

Connecting tolerates a slow-starting or briefly-shedding server:
``connect_retries`` retries refused/reset connections with **seeded**
exponential backoff (:func:`backoff_delay_s` — same seed and attempt →
same delay, so chaos tests replay the exact retry schedule).  An
established connection never auto-reconnects mid-request — replaying a
campaign submission is not idempotent — but :meth:`ServeClient.reconnect`
lets a caller rebuild the transport explicitly.
"""

from __future__ import annotations

import json
import random
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.serve.protocol import canonical_result_bytes

#: Connection errors worth retrying: the socket file does not exist yet
#: (server still binding), or the server refused/reset the attempt
#: (accept-dropped under an injected fault, backlog momentarily full).
_RETRYABLE_CONNECT = (FileNotFoundError, ConnectionRefusedError,
                      ConnectionResetError)


def backoff_delay_s(attempt: int, *, base_s: float = 0.05,
                    seed: int = 0, cap_s: float = 2.0) -> float:
    """Deterministic full-jitter exponential backoff for one attempt.

    ``delay = U(0, min(cap, base * 2**attempt))`` with the uniform draw
    taken from a PRNG seeded by ``(seed, attempt)`` — every retry
    schedule is a pure function of its inputs, so tests assert on exact
    delays instead of sleeping real time.
    """
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    ceiling = min(float(cap_s), float(base_s) * (2 ** attempt))
    rng = random.Random(  # drh: ignore[DRH001] -- pure fn of (seed, attempt); paces reconnects, never result bytes
        seed * 1000003 + attempt)
    return rng.uniform(0.0, ceiling)


class ServeClientError(ReproError):
    """The server closed the connection before concluding a request."""


@dataclass
class ServeReply:
    """Everything one campaign request produced, in arrival order."""

    #: "ok" (result event), "rejected", or "error".
    status: str
    #: Rejection/error reason ("" for ok).
    reason: str = ""
    detail: str = ""
    #: The final result dict (None unless status == "ok").
    result: Optional[Dict[str, Any]] = None
    #: Degradation report text from the campaign runner.
    report: str = ""
    stats: Dict[str, Any] = field(default_factory=dict)
    degraded: bool = False
    #: Incremental module events: [(module_id, resumed, payload), ...].
    modules: List[tuple] = field(default_factory=list)
    #: Streamed progress events (dicts with module_id/done/total/flips/rung).
    progress: List[Dict[str, Any]] = field(default_factory=list)
    #: Raw protocol events, in order.
    events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def result_bytes(self) -> bytes:
        """Canonical bytes of the result — the byte-parity comparator."""
        if self.result is None:
            raise ServeClientError("request produced no result "
                                   f"({self.status}: {self.reason})")
        return canonical_result_bytes(self.result)


class ServeClient:
    """One connection to a running campaign service."""

    def __init__(self, socket_path, timeout: Optional[float] = None, *,
                 connect_retries: int = 0, backoff_base_s: float = 0.05,
                 backoff_seed: int = 0, clock=None) -> None:
        if connect_retries < 0:
            raise ValueError("connect_retries must be >= 0")
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self.connect_retries = int(connect_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_seed = int(backoff_seed)
        #: Injectable clock (needs ``sleep``); defaults to real sleeps.
        if clock is None:
            from repro.runner.retry import WallClock
            clock = WallClock()
        self.clock = clock
        self.connect_attempts = 0
        self._request_count = 0
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    def _connect(self) -> None:
        """(Re)establish the transport, retrying with seeded backoff."""
        last_error: Optional[OSError] = None
        for attempt in range(self.connect_retries + 1):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            if self.timeout is not None:
                sock.settimeout(self.timeout)
            self.connect_attempts += 1
            try:
                sock.connect(self.socket_path)
            except _RETRYABLE_CONNECT as error:
                sock.close()
                last_error = error
                if self.connect_retries == 0:
                    # No retries requested: keep the historical contract
                    # and let the raw OSError subclass propagate.
                    raise
                if attempt < self.connect_retries:
                    self.clock.sleep(backoff_delay_s(
                        attempt, base_s=self.backoff_base_s,
                        seed=self.backoff_seed))
                continue
            except OSError:
                sock.close()
                raise
            self._sock = sock
            self._file = sock.makefile("rwb")
            return
        raise ServeClientError(
            f"could not connect to {self.socket_path} after "
            f"{self.connect_retries + 1} attempt(s): {last_error}")

    def reconnect(self) -> None:
        """Drop the current transport and dial again (same backoff).

        Any in-flight request on the old connection is cancelled
        server-side by the disconnect; the caller resubmits explicitly.
        """
        self.close()
        self._connect()

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._sock is None:
            return
        try:
            if self._file is not None:
                self._file.close()
        except OSError:
            # Closing flushes any buffered bytes; if the server already
            # reset the socket (accept drop, shutdown) that flush fails.
            # The connection is gone either way — never let teardown mask
            # the error the caller is already handling.
            pass
        finally:
            self._sock.close()
            self._sock = None
            self._file = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def send(self, payload: Dict[str, Any]) -> None:
        if self._file is None:
            raise ServeClientError("client is closed; call reconnect()")
        try:
            self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
            self._file.flush()
        except ConnectionError as error:
            raise ServeClientError(
                f"server closed the connection: {error}") from None

    def read_event(self) -> Dict[str, Any]:
        if self._file is None:
            raise ServeClientError("client is closed; call reconnect()")
        try:
            line = self._file.readline()
        except ConnectionError as error:
            # An accept-dropped or shut-down server resets the socket;
            # to the caller that is the same "server went away" outcome
            # as an orderly close.
            raise ServeClientError(
                f"server closed the connection: {error}") from None
        if not line:
            raise ServeClientError("server closed the connection")
        return json.loads(line)

    def _next_id(self, prefix: str) -> str:
        self._request_count += 1
        return f"{prefix}{self._request_count}"

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        request_id = self._next_id("ping-")
        self.send({"op": "ping", "id": request_id})
        event = self.read_event()
        return event.get("event") == "pong" and event.get("id") == request_id

    def status(self) -> Dict[str, Any]:
        request_id = self._next_id("status-")
        self.send({"op": "status", "id": request_id})
        return self.read_event()

    def health(self) -> Dict[str, Any]:
        """The service's degradation-ladder view (``health`` op)."""
        request_id = self._next_id("health-")
        self.send({"op": "health", "id": request_id})
        return self.read_event()

    def cancel(self, request_id: str) -> None:
        self.send({"op": "cancel", "id": request_id})

    def metrics(self) -> str:
        """The Prometheus exposition text (``metrics`` op)."""
        request_id = self._next_id("metrics-")
        self.send({"op": "metrics", "id": request_id})
        event = self.read_event()
        return event.get("text", "")

    # ------------------------------------------------------------------
    def campaign(self, study: str, *, request_id: Optional[str] = None,
                 preset: str = "quick", seed: Optional[int] = None,
                 overrides: Optional[Dict[str, Any]] = None,
                 workers: int = 1, deadline_s: Optional[float] = None,
                 checkpoint_dir: Optional[str] = None, resume: bool = False,
                 fault_plan: Optional[str] = None,
                 fault_seed: Optional[int] = None,
                 trace: bool = False) -> ServeReply:
        """Submit one campaign and block until it concludes."""
        payload: Dict[str, Any] = {
            "op": "campaign",
            "id": request_id if request_id is not None
            else self._next_id("req-"),
            "study": study, "preset": preset, "workers": workers,
        }
        if seed is not None:
            payload["seed"] = seed
        if overrides:
            payload["overrides"] = overrides
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if checkpoint_dir is not None:
            payload["checkpoint_dir"] = str(checkpoint_dir)
        if resume:
            payload["resume"] = True
        if fault_plan is not None:
            payload["fault_plan"] = fault_plan
        if fault_seed is not None:
            payload["fault_seed"] = fault_seed
        if trace:
            payload["trace"] = True
        self.send(payload)
        return self.collect(payload["id"])

    def collect(self, request_id: str) -> ServeReply:
        """Read events for ``request_id`` until a concluding one arrives."""
        reply = ServeReply(status="pending")
        while True:
            event = self.read_event()
            if event.get("id") != request_id:
                continue  # interleaved response to another request
            reply.events.append(event)
            kind = event.get("event")
            if kind == "accepted":
                continue
            if kind == "module":
                reply.modules.append((event["module_id"], event["resumed"],
                                      event["payload"]))
                continue
            if kind == "progress":
                reply.progress.append(event)
                continue
            if kind == "rejected":
                reply.status = "rejected"
                reply.reason = event.get("reason", "")
                reply.detail = event.get("detail", "")
                return reply
            if kind == "error":
                reply.status = "error"
                reply.reason = event.get("reason", "")
                reply.detail = event.get("detail", "")
                return reply
            if kind == "result":
                reply.status = "ok"
                reply.result = event["result"]
                reply.report = event.get("report", "")
                reply.stats = event.get("stats", {})
                reply.degraded = bool(event.get("degraded", False))
                return reply
