"""Per-manufacturer fault-model calibration profiles.

Each :class:`MfrProfile` gathers every constant that makes one anonymized
manufacturer (A = Micron, B = Samsung, C = SK Hynix, D = Nanya in Table 4)
behave the way the paper measured it:

* spatial HCfirst structure (Figs. 11, 14, 15),
* vulnerable-temperature-range population (Fig. 3, Table 3),
* per-row temperature response of HCfirst (Figs. 4, 5),
* aggressor active-time kinetics (Figs. 7-10),
* column vulnerability structure (Figs. 12, 13),
* data-pattern sensitivity (Table 1 / WCDP selection).

The values were derived analytically from the paper's published statistics
and refined against the calibration test-suite in
``tests/calibration`` (see DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.errors import ConfigError

#: Reference temperature at which ``hc_base`` thresholds are defined.
REFERENCE_TEMPERATURE_C = 50.0


@dataclass(frozen=True)
class MfrProfile:
    """Calibration constants for one manufacturer's chips."""

    name: str

    # --- spatial HCfirst structure (hammer = aggressor-pair activation) ---
    row_hcfirst_median: float      # target median per-row HCfirst at 50 degC
    sigma_module: float            # log-normal sd of module-to-module factor
    sigma_subarray: float          # log-normal sd of subarray factor
    sigma_row: float               # log-normal sd of row factor
    cell_tail_exponent: float      # k: within-row threshold CDF ~ (x/x_max)^k
    outlier_row_fraction: float    # extra super-vulnerable row mixture
    outlier_row_factor: float      # multiplicative HCfirst factor for outliers

    # --- vulnerable-cell population density ---
    cells_per_row_mean: float      # Poisson mean of vulnerable cells per row

    # --- vulnerable temperature ranges (Fig. 3) ---
    full_range_fraction: float     # cells vulnerable across the whole sweep
    range_center_mu: float         # degC, mean of range centers
    range_center_sd: float
    range_width_min: float         # degC
    range_width_mean: float        # degC, exponential mean beyond the minimum
    gap_fraction: float            # cells with one non-flipping temp inside range

    # --- per-row temperature response of log HCfirst (Fig. 5) ---
    temp_slope_mu: float           # s: 1/degC
    temp_slope_sd: float
    temp_quad_mu: float            # q: 1/degC^2
    temp_quad_sd: float
    temp_walk_sd: float            # bounded-noise amplitude at dT = 5 degC

    # --- active-time kinetics (Figs. 7-10) ---
    beta_on: float                 # HCfirst ~ (tAggOn/tRAS)^-beta_on
    gamma_off: float               # HCfirst ~ (tAggOff/tRP)^+gamma_off

    # --- column structure (Figs. 12-13) ---
    col_design_sigma: float        # sd of the design field (shared by chips)
    col_process_sigma: float       # sd of the per-chip process field
    col_design_mix: float          # 0..1: exponent share of the design field
    col_weight_floor: float        # additive floor (prevents zero columns)

    # --- data-pattern sensitivity (Table 1) ---
    pattern_bias: Tuple[float, float, float, float, float, float, float]
    pattern_sd: float

    # --- measurement noise ---
    trial_sigma: float             # per-repetition threshold jitter (log space)

    def __post_init__(self) -> None:
        if self.row_hcfirst_median <= 0:
            raise ConfigError(f"{self.name}: row_hcfirst_median must be positive")
        for field in ("sigma_module", "sigma_subarray", "sigma_row",
                      "temp_walk_sd", "pattern_sd", "trial_sigma"):
            if getattr(self, field) < 0:
                raise ConfigError(f"{self.name}: {field} must be non-negative")
        if self.cell_tail_exponent <= 0.5:
            raise ConfigError(f"{self.name}: cell_tail_exponent must exceed 0.5")
        for field in ("full_range_fraction", "gap_fraction", "col_design_mix",
                      "outlier_row_fraction"):
            if not 0.0 <= getattr(self, field) <= 1.0:
                raise ConfigError(f"{self.name}: {field} must lie in [0, 1]")
        if len(self.pattern_bias) != 7:
            raise ConfigError(f"{self.name}: pattern_bias must have 7 entries")
        if self.cells_per_row_mean <= 0:
            raise ConfigError(f"{self.name}: cells_per_row_mean must be positive")

    def with_overrides(self, **overrides) -> "MfrProfile":
        """Copy of this profile with selected constants replaced (ablations)."""
        return replace(self, **overrides)


# Pattern order matches repro.dram.data.PATTERNS:
# (colstripe, colstripe_inv, checkered, checkered_inv,
#  rowstripe, rowstripe_inv, random)
_PATTERN_BIAS_ROWSTRIPE_WC = (0.00, 0.00, 0.06, 0.06, 0.12, 0.12, 0.03)
_PATTERN_BIAS_CHECKERED_WC = (0.02, 0.02, 0.12, 0.12, 0.06, 0.06, 0.03)

PROFILES: Dict[str, MfrProfile] = {
    "A": MfrProfile(
        name="A",
        row_hcfirst_median=140_000.0,
        sigma_module=0.20,
        sigma_subarray=0.12,
        sigma_row=0.30,
        cell_tail_exponent=5.8,
        outlier_row_fraction=0.01,
        outlier_row_factor=0.70,
        cells_per_row_mean=768.0,
        full_range_fraction=0.142,
        range_center_mu=78.0,
        range_center_sd=18.0,
        range_width_min=1.0,
        range_width_mean=14.0,
        gap_fraction=0.009,
        temp_slope_mu=0.003,
        temp_slope_sd=0.002,
        temp_quad_mu=-7.5e-05,
        temp_quad_sd=4e-05,
        temp_walk_sd=0.02,
        beta_on=0.34,
        gamma_off=0.32,
        col_design_sigma=0.9,
        col_process_sigma=1.8,
        col_design_mix=0.25,
        col_weight_floor=0.0,
        pattern_bias=_PATTERN_BIAS_ROWSTRIPE_WC,
        pattern_sd=0.10,
        trial_sigma=0.03,
    ),
    "B": MfrProfile(
        name="B",
        row_hcfirst_median=85_000.0,
        sigma_module=0.25,
        sigma_subarray=0.12,
        sigma_row=0.31,
        cell_tail_exponent=3.4,
        outlier_row_fraction=0.01,
        outlier_row_factor=0.70,
        cells_per_row_mean=768.0,
        full_range_fraction=0.174,
        range_center_mu=62.0,
        range_center_sd=20.0,
        range_width_min=1.0,
        range_width_mean=15.0,
        gap_fraction=0.011,
        temp_slope_mu=0.0029,
        temp_slope_sd=0.002,
        temp_quad_mu=-4e-05,
        temp_quad_sd=4e-05,
        temp_walk_sd=0.02,
        beta_on=0.22,
        gamma_off=0.25,
        col_design_sigma=1.1,
        col_process_sigma=0.35,
        col_design_mix=0.85,
        col_weight_floor=0.25,
        pattern_bias=_PATTERN_BIAS_CHECKERED_WC,
        pattern_sd=0.10,
        trial_sigma=0.03,
    ),
    "C": MfrProfile(
        name="C",
        row_hcfirst_median=90_000.0,
        sigma_module=0.50,
        sigma_subarray=0.12,
        sigma_row=0.15,
        cell_tail_exponent=4.5,
        outlier_row_fraction=0.01,
        outlier_row_factor=0.70,
        cells_per_row_mean=640.0,
        full_range_fraction=0.096,
        range_center_mu=77.0,
        range_center_sd=16.0,
        range_width_min=1.0,
        range_width_mean=20.0,
        gap_fraction=0.020,
        temp_slope_mu=0.00375,
        temp_slope_sd=0.002,
        temp_quad_mu=-5.5e-05,
        temp_quad_sd=4e-05,
        temp_walk_sd=0.02,
        beta_on=0.26,
        gamma_off=0.45,
        col_design_sigma=1.0,
        col_process_sigma=1.1,
        col_design_mix=0.50,
        col_weight_floor=0.0,
        pattern_bias=_PATTERN_BIAS_ROWSTRIPE_WC,
        pattern_sd=0.10,
        trial_sigma=0.03,
    ),
    "D": MfrProfile(
        name="D",
        row_hcfirst_median=148_000.0,
        sigma_module=0.08,
        sigma_subarray=0.07,
        sigma_row=0.05,
        cell_tail_exponent=5.0,
        outlier_row_fraction=0.005,
        outlier_row_factor=0.80,
        cells_per_row_mean=288.0,
        full_range_fraction=0.298,
        range_center_mu=74.0,
        range_center_sd=20.0,
        range_width_min=1.0,
        range_width_mean=16.0,
        gap_fraction=0.008,
        temp_slope_mu=0.0025,
        temp_slope_sd=0.002,
        temp_quad_mu=-8.5e-05,
        temp_quad_sd=4e-05,
        temp_walk_sd=0.02,
        beta_on=0.31,
        gamma_off=0.32,
        col_design_sigma=0.9,
        col_process_sigma=1.4,
        col_design_mix=0.45,
        col_weight_floor=0.02,
        pattern_bias=_PATTERN_BIAS_CHECKERED_WC,
        pattern_sd=0.10,
        trial_sigma=0.03,
    ),
}


def profile_for(manufacturer: str) -> MfrProfile:
    """Profile for an anonymized manufacturer letter."""
    try:
        return PROFILES[manufacturer.upper()]
    except KeyError:
        raise ConfigError(
            f"unknown manufacturer {manufacturer!r}; known: {sorted(PROFILES)}"
        ) from None
