"""The per-module RowHammer fault model.

:class:`RowHammerFaultModel` is the single source of truth for bit flips.
It exposes two equivalent views:

* a **command path** — the DRAM module calls :meth:`accrue_activation` on
  every precharge and :meth:`flips` on reads, so arbitrary SoftMC programs
  (any access pattern, any timing) produce flips; and
* an **analytic oracle** — :meth:`row_hcfirst` / :meth:`flip_cells` compute,
  from the same per-cell thresholds and the same kinetics, what a hammer
  test *would* measure, without enumerating 300 K commands.

Both views share every constant, so fast sweeps and command-accurate runs
agree by construction (verified by ``tests/integration/test_oracle_vs_commands.py``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.data import DataPattern
from repro.dram.geometry import Geometry
from repro.dram.timing import TimingSet
from repro.faultmodel.kinetics import (
    DisturbanceKinetics,
    MAX_COUPLING_DISTANCE,
    distance_weight,
)
from repro.faultmodel.population import CellPopulation, RowCells
from repro.faultmodel.profiles import MfrProfile
from repro.rng import SeedSequenceTree


@dataclass(frozen=True)
class FlippedCell:
    """One observed RowHammer bit flip."""

    bank: int
    row: int
    chip: int
    col: int
    bit: int


class RowHammerFaultModel:
    """RowHammer physics of one DRAM module (all chips, lock-step)."""

    def __init__(self, profile: MfrProfile, geometry: Geometry,
                 timing: TimingSet, tree: SeedSequenceTree) -> None:
        self.profile = profile
        self.geometry = geometry
        self.timing = timing
        self.tree = tree
        self.kinetics = DisturbanceKinetics(
            beta_on=profile.beta_on,
            gamma_off=profile.gamma_off,
            tras_ns=timing.tRAS,
            trp_ns=timing.tRP,
        )
        self.population = CellPopulation(profile, geometry, tree)
        self.data_seed = tree.seed("data-fill")
        self._damage: Dict[Tuple[int, int], float] = defaultdict(float)

    # ------------------------------------------------------------------
    # Command path: called by the DRAM module model
    # ------------------------------------------------------------------
    def accrue_activation(self, bank: int, aggressor_row: int,
                          t_on_ns: float, t_off_ns: float,
                          count: int = 1) -> None:
        """Deposit the damage of ``count`` identical activations.

        Called when the aggressor row is precharged, once the actual on-time
        (and the preceding precharged time) is known.
        """
        if count <= 0:
            return
        on_factor = self.kinetics.on_time_factor(t_on_ns)
        off_factor = self.kinetics.off_time_factor(t_off_ns)
        scale = on_factor * off_factor * count
        for distance in range(1, MAX_COUPLING_DISTANCE + 1):
            weight = distance_weight(distance) * scale
            for neighbor in (aggressor_row - distance, aggressor_row + distance):
                if 0 <= neighbor < self.geometry.rows_per_bank:
                    self._damage[(bank, neighbor)] += weight

    def restore_row(self, bank: int, row: int) -> None:
        """Clear accumulated disturbance (refresh or rewrite restores charge)."""
        self._damage.pop((bank, row), None)

    def restore_all(self) -> None:
        """Clear all disturbance (e.g. a full refresh cycle)."""
        self._damage.clear()

    def damage_units(self, bank: int, row: int) -> float:
        """Accumulated damage units of ``row`` since its last restore."""
        return self._damage.get((bank, row), 0.0)

    def flips(self, bank: int, row: int, temperature_c: float,
              pattern: DataPattern, pattern_victim_row: int,
              trial_gen: Optional[np.random.Generator] = None
              ) -> List[FlippedCell]:
        """Bit flips observable in ``row`` given its accumulated damage."""
        damage = self.damage_units(bank, row)
        if damage <= 0.0:
            return []
        cells = self.population.cells_for(bank, row)
        if not len(cells):
            return []
        thresholds = cells.thresholds(temperature_c, pattern, pattern_victim_row,
                                      self.data_seed, trial_gen)
        flipped = np.flatnonzero(damage >= thresholds)
        return [
            FlippedCell(bank, row, int(cells.chip[i]), int(cells.col[i]),
                        int(cells.bit[i]))
            for i in flipped
        ]

    # ------------------------------------------------------------------
    # Analytic oracle: what a hammer test would measure
    # ------------------------------------------------------------------
    def default_aggressors(self, victim_row: int) -> Tuple[int, int]:
        """The double-sided aggressor pair of ``victim_row``."""
        return (victim_row - 1, victim_row + 1)

    def hammer_units(self, observed_row: int,
                     aggressors: Sequence[int],
                     t_on_ns: Optional[float] = None,
                     t_off_ns: Optional[float] = None) -> float:
        """Damage units one hammer deposits into ``observed_row``."""
        t_on = self.timing.tRAS if t_on_ns is None else t_on_ns
        t_off = self.timing.tRP if t_off_ns is None else t_off_ns
        return self.kinetics.hammer_units(observed_row, aggressors, t_on, t_off)

    def cell_hcfirst(self, bank: int, observed_row: int, temperature_c: float,
                     pattern: DataPattern, pattern_victim_row: int,
                     aggressors: Optional[Sequence[int]] = None,
                     t_on_ns: Optional[float] = None,
                     t_off_ns: Optional[float] = None,
                     trial_gen: Optional[np.random.Generator] = None
                     ) -> Tuple[RowCells, np.ndarray]:
        """Per-cell hammer counts at which each cell of ``observed_row`` flips.

        Returns ``(cells, hcfirst_array)`` where unreachable cells hold
        ``inf``.  ``observed_row`` need not be the double-sided victim: pass
        the single-sided victims (distance +/-2) to reproduce Fig. 4's
        secondary series.
        """
        if aggressors is None:
            aggressors = self.default_aggressors(pattern_victim_row)
        units = self.hammer_units(observed_row, aggressors, t_on_ns, t_off_ns)
        cells = self.population.cells_for(bank, observed_row)
        if not len(cells):
            return cells, np.empty(0)
        if units <= 0.0:
            return cells, np.full(len(cells), np.inf)
        thresholds = cells.thresholds(temperature_c, pattern, pattern_victim_row,
                                      self.data_seed, trial_gen)
        return cells, thresholds / units

    def row_hcfirst(self, bank: int, observed_row: int, temperature_c: float,
                    pattern: DataPattern,
                    pattern_victim_row: Optional[int] = None,
                    aggressors: Optional[Sequence[int]] = None,
                    t_on_ns: Optional[float] = None,
                    t_off_ns: Optional[float] = None,
                    trial_gen: Optional[np.random.Generator] = None) -> float:
        """Minimum hammer count at which ``observed_row`` shows its first flip.

        ``inf`` if no cell can flip under these conditions.
        """
        victim = observed_row if pattern_victim_row is None else pattern_victim_row
        _, hcs = self.cell_hcfirst(bank, observed_row, temperature_c, pattern,
                                   victim, aggressors, t_on_ns, t_off_ns,
                                   trial_gen)
        return float(hcs.min()) if hcs.size else float("inf")

    def flip_cells(self, bank: int, observed_row: int, hammer_count: float,
                   temperature_c: float, pattern: DataPattern,
                   pattern_victim_row: Optional[int] = None,
                   aggressors: Optional[Sequence[int]] = None,
                   t_on_ns: Optional[float] = None,
                   t_off_ns: Optional[float] = None,
                   trial_gen: Optional[np.random.Generator] = None
                   ) -> List[FlippedCell]:
        """Cells of ``observed_row`` that flip after ``hammer_count`` hammers."""
        victim = observed_row if pattern_victim_row is None else pattern_victim_row
        cells, hcs = self.cell_hcfirst(bank, observed_row, temperature_c, pattern,
                                       victim, aggressors, t_on_ns, t_off_ns,
                                       trial_gen)
        if not hcs.size:
            return []
        flipped = np.flatnonzero(hcs <= hammer_count)
        return [
            FlippedCell(bank, observed_row, int(cells.chip[i]),
                        int(cells.col[i]), int(cells.bit[i]))
            for i in flipped
        ]

    def row_flip_count(self, bank: int, observed_row: int, hammer_count: float,
                       temperature_c: float, pattern: DataPattern,
                       pattern_victim_row: Optional[int] = None,
                       aggressors: Optional[Sequence[int]] = None,
                       t_on_ns: Optional[float] = None,
                       t_off_ns: Optional[float] = None,
                       trial_gen: Optional[np.random.Generator] = None) -> int:
        """Number of bit flips in ``observed_row`` after ``hammer_count`` hammers."""
        victim = observed_row if pattern_victim_row is None else pattern_victim_row
        _, hcs = self.cell_hcfirst(bank, observed_row, temperature_c, pattern,
                                   victim, aggressors, t_on_ns, t_off_ns,
                                   trial_gen)
        if not hcs.size:
            return 0
        return int(np.count_nonzero(hcs <= hammer_count))
