"""Disturbance kinetics: how one aggressor activation damages neighbors.

The paper's circuit-level hypothesis (Sections 6.3 and 7.4) combines two
mechanisms:

* **electron injection** into victim cells, which grows the longer the
  aggressor wordline stays raised -> damage scales like
  ``(tAggOn / tRAS) ** beta_on``;
* **wordline-to-wordline cross-talk** during activation, whose integrated
  effect shrinks when the bank rests longer between activations -> damage
  scales like ``(tRP / tAggOff) ** gamma_off``.

One *hammer* is a pair of activations, one per aggressor of a double-sided
attack; with the distance-1 weight of 0.5 per activation, one hammer
deposits exactly one damage *unit* into the double-sided victim at nominal
timings.  Cell thresholds (``hc_base``) are therefore expressed directly in
hammer units.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

#: Per-activation damage weight at physical distance 1 (immediate neighbor).
WEIGHT_DISTANCE_1 = 0.5

#: Per-activation damage weight at physical distance 2 (the paper observes
#: flips in rows +/-2 of the aggressor pair; coupling is much weaker).
WEIGHT_DISTANCE_2 = 0.06

#: Blast radius of a single activation, in rows.
MAX_COUPLING_DISTANCE = 2

DISTANCE_WEIGHTS: Dict[int, float] = {
    1: WEIGHT_DISTANCE_1,
    2: WEIGHT_DISTANCE_2,
}


def distance_weight(distance: int) -> float:
    """Damage weight of one activation on a row ``|distance|`` rows away."""
    return DISTANCE_WEIGHTS.get(abs(distance), 0.0)


@lru_cache(maxsize=4096)
def _cached_hammer_units(kinetics: "DisturbanceKinetics",
                         distances: Tuple[int, ...],
                         t_agg_on_ns: float, t_agg_off_ns: float) -> float:
    """Memoized per-hammer damage for one (distances, timing) key.

    ``DisturbanceKinetics`` is a frozen dataclass, so it hashes by value
    and the cache survives across testers sharing one parameter set.  The
    sum runs in the caller's aggressor order, matching the uncached
    :meth:`DisturbanceKinetics.hammer_units` term by term.
    """
    return sum(
        kinetics.activation_damage(distance, t_agg_on_ns, t_agg_off_ns)
        for distance in distances
    )


@dataclass(frozen=True)
class DisturbanceKinetics:
    """Active/precharged-time scaling of per-activation damage.

    Attributes:
        beta_on: exponent of the aggressor-on-time term (Obsv. 8-9).
        gamma_off: exponent of the aggressor-off-time term (Obsv. 10-11).
        tras_ns: nominal aggressor on-time (the JEDEC ``tRAS``).
        trp_ns: nominal precharged time (the JEDEC ``tRP``).
    """

    beta_on: float
    gamma_off: float
    tras_ns: float
    trp_ns: float

    def __post_init__(self) -> None:
        if self.beta_on < 0 or self.gamma_off < 0:
            raise ConfigError("kinetics exponents must be non-negative")
        if self.tras_ns <= 0 or self.trp_ns <= 0:
            raise ConfigError("nominal timings must be positive")

    # ------------------------------------------------------------------
    def on_time_factor(self, t_agg_on_ns: float) -> float:
        """Damage multiplier for an aggressor held open ``t_agg_on_ns``.

        Equal to 1.0 at nominal ``tRAS``; grows sub-linearly with on-time
        (electron injection accumulates while the wordline is raised).
        On-times shorter than ``tRAS`` are illegal and clipped to nominal.
        """
        ratio = max(t_agg_on_ns, self.tras_ns) / self.tras_ns
        return ratio ** self.beta_on

    def off_time_factor(self, t_agg_off_ns: float) -> float:
        """Damage multiplier for a bank precharged ``t_agg_off_ns``.

        Equal to 1.0 at nominal ``tRP``; decays as the bank rests longer
        (cross-talk noise integrates over back-to-back activations).
        """
        ratio = max(t_agg_off_ns, self.trp_ns) / self.trp_ns
        return ratio ** (-self.gamma_off)

    def activation_damage(self, distance: int, t_agg_on_ns: float,
                          t_agg_off_ns: float) -> float:
        """Damage units deposited by one activation at ``distance`` rows."""
        weight = distance_weight(distance)
        if weight == 0.0:
            return 0.0
        return (weight
                * self.on_time_factor(t_agg_on_ns)
                * self.off_time_factor(t_agg_off_ns))

    def hammer_units(self, victim_row: int, aggressor_rows: Sequence[int],
                     t_agg_on_ns: float, t_agg_off_ns: float) -> float:
        """Damage units one *hammer* deposits in ``victim_row``.

        One hammer activates each aggressor once.  For the canonical
        double-sided pattern ``(victim - 1, victim + 1)`` at nominal timings
        this is exactly 1.0.
        """
        return sum(
            self.activation_damage(victim_row - aggressor, t_agg_on_ns, t_agg_off_ns)
            for aggressor in aggressor_rows
        )

    def hammer_units_grid(self, victim_row: int,
                          aggressor_rows: Sequence[int],
                          t_agg_on_ns: Sequence[float],
                          t_agg_off_ns: Sequence[float]) -> "np.ndarray":
        """Per-point damage units over paired timing grids, as a vector.

        Element ``j`` equals ``hammer_units(victim_row, aggressor_rows,
        t_agg_on_ns[j], t_agg_off_ns[j])`` exactly: each distinct timing is
        evaluated through the same scalar ``pow`` calls the pointwise
        oracle makes (bit-for-bit equality matters more here than
        vectorizing a tiny loop).  Repeated timings — every point of a
        temperature sweep shares one — are computed once and reused.
        """
        distances = tuple(victim_row - aggressor
                          for aggressor in aggressor_rows)
        out = np.empty(len(t_agg_on_ns), dtype=float)
        for j, (on, off) in enumerate(zip(t_agg_on_ns, t_agg_off_ns)):
            out[j] = _cached_hammer_units(self, distances, float(on),
                                          float(off))
        return out
