"""Per-cell vulnerable temperature ranges (Section 5.1 of the paper).

Every vulnerable cell owns a *bounded, continuous* temperature range
``[t_lo, t_hi]`` outside which it never experiences RowHammer bit flips
(Obsv. 1).  Ranges are sampled from a manufacturer-specific mixture:

* an atom of cells vulnerable across (at least) the whole tested sweep
  (Obsv. 2: 9.6 %-29.8 % of cells depending on manufacturer),
* a continuum with normally-distributed centers and exponentially
  distributed widths, producing both very narrow (Obsv. 3) and wide ranges.

A small fraction of cells additionally carries a *gap*: a single tested
temperature inside the range at which the cell does not flip (the ~1 %
"1 gap" populations annotated in Fig. 3 / Table 3).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.faultmodel.profiles import MfrProfile
from repro.units import PAPER_TEMP_MAX_C, PAPER_TEMP_MIN_C, PAPER_TEMP_STEP_C

#: Margin by which "full range" cells extend past the tested sweep, so they
#: remain vulnerable at the sweep edges regardless of measurement jitter.
_FULL_RANGE_MARGIN_C = 15.0


def sample_ranges(gen: np.random.Generator, profile: MfrProfile,
                  n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample ``n`` cells' ``(t_lo, t_hi, gap_temperature)`` arrays.

    ``gap_temperature`` is NaN for gap-free cells; for gap cells it is one
    interior tested temperature at which the cell refuses to flip.
    """
    if n == 0:
        empty = np.empty(0)
        return empty, empty.copy(), empty.copy()

    is_full = gen.random(n) < profile.full_range_fraction
    centers = gen.normal(profile.range_center_mu, profile.range_center_sd, size=n)
    widths = profile.range_width_min + gen.exponential(profile.range_width_mean,
                                                       size=n)

    t_lo = centers - widths / 2.0
    t_hi = centers + widths / 2.0
    t_lo[is_full] = PAPER_TEMP_MIN_C - _FULL_RANGE_MARGIN_C
    t_hi[is_full] = PAPER_TEMP_MAX_C + _FULL_RANGE_MARGIN_C

    gap = np.full(n, np.nan)
    has_gap = gen.random(n) < profile.gap_fraction
    if has_gap.any():
        # A gap sits on one of the paper's tested temperatures strictly
        # inside the cell's range; cells whose range contains no interior
        # tested point simply stay gap-free.
        tested = np.arange(PAPER_TEMP_MIN_C + PAPER_TEMP_STEP_C,
                           PAPER_TEMP_MAX_C, PAPER_TEMP_STEP_C)
        for idx in np.flatnonzero(has_gap):
            interior = tested[(tested > t_lo[idx]) & (tested < t_hi[idx])]
            if interior.size:
                gap[idx] = gen.choice(interior)
    return t_lo, t_hi, gap


def active_mask(t_lo: np.ndarray, t_hi: np.ndarray, gap: np.ndarray,
                temperature_c: float) -> np.ndarray:
    """Boolean mask of cells vulnerable at ``temperature_c``.

    A cell is active when the temperature lies within its range and does not
    coincide with its gap point (gap points block a +/- half-step window,
    i.e. exactly one tested temperature of the paper's 5 degC sweep).
    """
    mask = (t_lo <= temperature_c) & (temperature_c <= t_hi)
    gap_filled = np.nan_to_num(gap, nan=np.inf)
    gap_hit = np.abs(gap_filled - temperature_c) < (PAPER_TEMP_STEP_C / 2.0)
    return mask & ~gap_hit


def active_mask_grid(t_lo: np.ndarray, t_hi: np.ndarray, gap: np.ndarray,
                     temperatures_c) -> np.ndarray:
    """``(cells, temperatures)`` boolean activity matrix.

    Column ``j`` is bit-identical to
    ``active_mask(t_lo, t_hi, gap, temperatures_c[j])`` — comparisons and
    the subtraction are exactly-rounded elementwise operations, so the
    batched layout cannot change any outcome.  Gapless cells carry NaN and
    every comparison against NaN is False, exactly like the pointwise
    path's NaN-to-inf substitution (gap values are always finite or NaN).
    """
    temps = np.asarray(temperatures_c, dtype=float)
    mask = (t_lo[:, None] <= temps[None, :]) & (temps[None, :] <= t_hi[:, None])
    gap_hit = (np.abs(gap[:, None] - temps[None, :])
               < (PAPER_TEMP_STEP_C / 2.0))
    return mask & ~gap_hit
