"""Spatially-correlated variation fields of the fault model.

RowHammer vulnerability varies across DRAM with structure at several scales
(Section 7 of the paper).  We compose a cell's base threshold from
independent multiplicative log-normal factors::

    hc_base(cell) = C * F_module * F_subarray(sa) * F_row(row) * F_cell(cell)

and place cells on columns according to a weight field that mixes a
*design-induced* component (identical in every chip of a module; Obsv. 14)
with a *process-induced* per-chip component.

All factors are derived deterministically from the module's seed tree, so a
module is the same device every time it is instantiated.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.dram.geometry import Geometry
from repro.faultmodel.profiles import MfrProfile, REFERENCE_TEMPERATURE_C
from repro.rng import SeedSequenceTree


def module_factor(tree: SeedSequenceTree, profile: MfrProfile) -> float:
    """Module-to-module log-normal factor (Fig. 14: module spread)."""
    gen = tree.generator("module-factor")
    return float(np.exp(gen.normal(0.0, profile.sigma_module)))


def subarray_factor(tree: SeedSequenceTree, profile: MfrProfile,
                    bank: int, subarray: int) -> float:
    """Subarray factor: small, shared by every row of the subarray."""
    gen = tree.generator("subarray-factor", bank, subarray)
    return float(np.exp(gen.normal(0.0, profile.sigma_subarray)))


def row_factor(tree: SeedSequenceTree, profile: MfrProfile,
               bank: int, row: int) -> float:
    """Per-row factor: the dominant spatial term (Fig. 11).

    A small fraction of rows draw an extra *super-vulnerable* multiplier,
    thickening the low tail the way Obsv. 12 describes.
    """
    gen = tree.generator("row-factor", bank, row)
    factor = float(np.exp(gen.normal(0.0, profile.sigma_row)))
    if gen.random() < profile.outlier_row_fraction:
        factor *= profile.outlier_row_factor
    return factor


def expected_min_cell_factor(profile: MfrProfile) -> float:
    """Median of the minimum cell factor within a row.

    Cell factors follow a bounded power law ``F(x) = x**k`` on (0, 1]
    (``k = cell_tail_exponent``): the within-row threshold *count* below a
    damage level then grows like ``damage**k``, which is what produces the
    paper's multiplicative BER responses (Obsv. 8/10) on top of first-flip
    thresholds below the BER hammer count (Fig. 11).  The minimum of ``n``
    such draws has median ``(1 - 0.5**(1/n)) ** (1/k)``; ``n`` is halved
    because only cells whose charged value matches the installed pattern
    are exposed.

    Used to calibrate the global constant ``C`` so that the row-level
    HCfirst median lands on the profile's published target.
    """
    n = max(profile.cells_per_row_mean / 2.0, 1.0)
    k = profile.cell_tail_exponent
    return float((1.0 - 0.5 ** (1.0 / n)) ** (1.0 / k))


def base_constant(profile: MfrProfile) -> float:
    """Global threshold constant ``C`` in hammer units."""
    return profile.row_hcfirst_median / expected_min_cell_factor(profile)


def column_weight_field(tree: SeedSequenceTree, profile: MfrProfile,
                        geometry: Geometry) -> np.ndarray:
    """Probability field over (chip, column) for vulnerable-cell placement.

    Returns an array of shape ``(chips, cols_per_row)`` summing to 1.

    The *design* field is drawn once per module and broadcast to every chip
    (columns near repeating analog structures are systematically more
    sensitive); the *process* field is drawn independently per chip.  The
    profile's ``col_design_mix`` sets the exponent share of each component,
    and ``col_weight_floor`` adds a uniform floor (manufacturer B shows at
    least a few flips in every column, Obsv. 13).
    """
    gen_design = tree.generator("column-design")
    design = np.exp(gen_design.normal(0.0, profile.col_design_sigma,
                                      size=geometry.cols_per_row))
    weights = np.empty((geometry.chips, geometry.cols_per_row))
    mix = profile.col_design_mix
    for chip in range(geometry.chips):
        gen_proc = tree.generator("column-process", chip)
        process = np.exp(gen_proc.normal(0.0, profile.col_process_sigma,
                                         size=geometry.cols_per_row))
        weights[chip] = (design ** mix) * (process ** (1.0 - mix))
    weights += profile.col_weight_floor * weights.mean()
    total = weights.sum()
    return weights / total


def row_temperature_response(tree: SeedSequenceTree, profile: MfrProfile,
                             bank: int, row: int) -> tuple:
    """Sample the row's HCfirst-vs-temperature curve parameters.

    Returns ``(s, q, z)`` such that

        log HCfirst(T) - log HCfirst(50) =
            s * dT + q * dT^2 + temp_walk_sd * z * (dT / 5) ** 0.25

    with ``dT = T - 50``.  The three terms are each monotone in ``T``
    (or quadratic), so a cell's flip region in temperature stays contiguous
    -- gaps only come from explicit gap cells (Table 3).
    """
    gen = tree.generator("row-temp-response", bank, row)
    s = gen.normal(profile.temp_slope_mu, profile.temp_slope_sd)
    q = gen.normal(profile.temp_quad_mu, profile.temp_quad_sd)
    z = gen.normal(0.0, 1.0)
    return float(s), float(q), float(z)


def temperature_log_shift(s: float, q: float, z: float, walk_sd: float,
                          temperature_c: float,
                          reference_c: float = REFERENCE_TEMPERATURE_C
                          ) -> float:
    """Evaluate the row response curve ``g(T)`` (see above) at one point."""
    dt = temperature_c - reference_c
    if dt == 0.0:
        return 0.0
    magnitude = abs(dt)
    sign = 1.0 if dt > 0 else -1.0
    walk = walk_sd * z * (magnitude / 5.0) ** 0.25 * sign
    return s * dt + q * dt * dt + walk


def temperature_log_shift_grid(s: float, q: float, z: float, walk_sd: float,
                               temperatures_c,
                               reference_c: float = REFERENCE_TEMPERATURE_C
                               ) -> np.ndarray:
    """``g(T)`` over a whole temperature grid, as a float64 vector.

    Evaluates the scalar response point-by-point instead of with array
    transcendentals: the batched oracle promises bit-for-bit equality
    with the pointwise path, and libm ``pow`` is only guaranteed to round
    identically when invoked the same way on the same scalar.  The grid
    has at most a few dozen points, so this costs nothing next to the
    per-cell work it amortizes.
    """
    return np.array([
        temperature_log_shift(s, q, z, walk_sd, float(t), reference_c)
        for t in temperatures_c
    ], dtype=float)
