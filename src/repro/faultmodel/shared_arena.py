"""Cross-process shared-memory arena for oracle threshold matrices.

:class:`~repro.faultmodel.batch.SharedMatrixCache` keeps one process's
oracles from rebuilding identical ``(cells x points)`` threshold parts —
but campaign workers are separate processes, so under ``workers > 1``
every worker used to rebuild every matrix its modules touch, once per
dispatch.  This module provides the cross-worker tier: one fixed-capacity
``multiprocessing.shared_memory`` segment holding the matrix bytes, plus
a tiny on-disk pickled index mapping cache keys to offsets, so a matrix
any worker builds is a zero-copy ``np.frombuffer`` view for every other
worker (and for re-dispatches after a pool respawn).

Concurrency and crash safety:

* all index access runs under ``fcntl.flock`` on a sidecar lock file —
  shared for readers, exclusive for writers; the OS releases the lock
  when a worker dies, so a crash mid-anything never wedges the campaign;
* a store copies the matrix bytes into the arena *first* and commits by
  atomically replacing the index file (write + ``os.replace``) — a torn
  store leaves unreferenced bytes, never a dangling index entry;
* the arena is append-only for its lifetime (one campaign); when full,
  stores are refused and callers fall back to their per-process LRU —
  recorded on the ``oracle.arena.full`` counter, never an error.

Correctness comes from the same purity argument as the in-process cache:
entries are keyed by the full identity of what they derive from, so a hit
is bit-identical to a rebuild no matter which worker populated it.
"""

from __future__ import annotations

import fcntl
import os
import pickle
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.obs import get_metrics


def _unregister(name: str) -> None:
    """Undo a resource-tracker registration we manage explicitly.

    Same rationale as :func:`repro.runner.shm._unregister` (not imported
    to keep faultmodel free of runner dependencies): create and — before
    Python 3.13 — attach both register with the resource tracker, which
    would unlink the arena when any single worker exits.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except (ImportError, KeyError, FileNotFoundError):  # pragma: no cover
        pass

#: Default arena capacity; threshold parts are ~(cells x temps) float64 +
#: bool, a few hundred KB per hot row at paper scales.
DEFAULT_ARENA_BYTES = 64 * 1024 * 1024

_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArena:
    """One campaign's shared matrix pool: segment + index + lock."""

    def __init__(self, segment: shared_memory.SharedMemory,
                 index_path: str, lock_path: str, owner: bool) -> None:
        self._segment = segment
        self.name = segment.name
        self.index_path = index_path
        self.lock_path = lock_path
        self._owner = owner
        self.capacity = len(segment.buf)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, directory: str,
               capacity: int = DEFAULT_ARENA_BYTES) -> "SharedArena":
        """Parent side: build a fresh arena under ``directory``."""
        # The create (and each worker attach) registration stays with the
        # resource tracker: registers into its cache are set-idempotent,
        # the one unlink in destroy() clears it, and if the whole process
        # tree dies first the tracker unlinks the arena for us.
        segment = shared_memory.SharedMemory(create=True, size=capacity)
        index_path = os.path.join(directory, "arena-index.pkl")
        lock_path = os.path.join(directory, "arena-index.lock")
        with open(lock_path, "w"):
            pass
        arena = cls(segment, index_path, lock_path, owner=True)
        arena._write_index({"__next__": 0})
        return arena

    @classmethod
    def attach(cls, name: str, index_path: str,
               lock_path: str) -> "SharedArena":
        """Worker side: attach to a parent-created arena."""
        segment = shared_memory.SharedMemory(name=name, create=False)
        return cls(segment, index_path, lock_path, owner=False)

    def close(self) -> None:
        if self._segment is not None:
            self._segment.close()
            self._segment = None

    def destroy(self) -> None:
        """Unlink the segment and remove the index (parent, at end)."""
        if self._segment is not None:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover
                _unregister(self.name)
            self._segment.close()
            self._segment = None
        for path in (self.index_path, self.lock_path):
            try:
                os.unlink(path)
            except FileNotFoundError:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    def _write_index(self, index: Dict) -> None:
        tmp = self.index_path + ".tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.index_path)

    def _read_index(self) -> Dict:
        try:
            with open(self.index_path, "rb") as handle:
                return pickle.load(handle)
        except (FileNotFoundError, EOFError, pickle.UnpicklingError):
            # Destroyed underneath us (campaign teardown) or unreadable:
            # behave as empty — callers fall back to rebuilding.
            return {"__next__": self.capacity}

    def _locked(self, exclusive: bool):
        handle = open(self.lock_path, "a+b")
        fcntl.flock(handle.fileno(),
                    fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
        return handle

    def _view(self, offset: int, dtype, shape) -> np.ndarray:
        count = int(np.prod(shape, dtype=np.int64))
        array = np.frombuffer(self._segment.buf, dtype=dtype,
                              count=count, offset=offset).reshape(shape)
        array.setflags(write=False)
        return array

    # ------------------------------------------------------------------
    def fetch(self, key: tuple
              ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Read-only ``(base, mask)`` views for ``key``, or None."""
        handle = self._locked(exclusive=False)
        try:
            entry = self._read_index().get(key)
        finally:
            handle.close()  # closing drops the flock
        if entry is None:
            return None
        base_offset, shape, mask_offset = entry
        return (self._view(base_offset, np.float64, shape),
                self._view(mask_offset, np.bool_, shape))

    def store(self, key: tuple,
              parts: Tuple[np.ndarray, np.ndarray]) -> bool:
        """Publish ``(base, mask)`` for every process; False when full."""
        base, mask = parts
        base = np.ascontiguousarray(base, dtype=np.float64)
        mask = np.ascontiguousarray(mask, dtype=np.bool_)
        handle = self._locked(exclusive=True)
        try:
            index = self._read_index()
            if key in index:
                return True  # another worker won the race; same bytes
            base_offset = _aligned(index["__next__"])
            mask_offset = _aligned(base_offset + base.nbytes)
            end = mask_offset + mask.nbytes
            if end > self.capacity:
                get_metrics().counter("oracle.arena.full").inc()
                return False
            buf = self._segment.buf
            buf[base_offset:base_offset + base.nbytes] = base.tobytes()
            buf[mask_offset:mask_offset + mask.nbytes] = mask.tobytes()
            index[key] = (base_offset, tuple(base.shape), mask_offset)
            index["__next__"] = end
            self._write_index(index)  # commit point
            return True
        finally:
            handle.close()

    def __len__(self) -> int:
        handle = self._locked(exclusive=False)
        try:
            return len(self._read_index()) - 1  # minus the bump pointer
        finally:
            handle.close()
