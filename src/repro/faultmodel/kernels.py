"""Hot-loop kernels for the batched oracle, with an optional numba tier.

The HCfirst binary search against an analytic threshold is a *step
function* of the threshold: the search only ever compares against the
finite set of reachable hammer counts, so its answer at any threshold is
the answer at the smallest reachable count >= the threshold (see
:mod:`repro.testing.hcfirst`).  That turns a per-grid-point search into
one ``searchsorted`` lookup through a precomputed table — this module
owns that lookup so both the testing layer and the batched oracle share
one implementation.

Kernel tiers:

* ``numpy`` (default, always available): vectorized ``searchsorted`` +
  gather.  This *is* the fast path — the searchsorted restructure already
  removed the per-point Python loop.
* ``numba`` (optional extra, dormant by default): a parallel JIT of the
  same lookup, enabled only when the ``numba`` package is importable
  *and* ``DEEPRH_KERNEL=numba`` is set.  Per the benchmark gate policy,
  it ships disabled until ``tools/bench_compare.py`` proves it >2x faster
  than the numpy tier on this machine — numerics are integer lookups, so
  either tier is bit-identical by construction.
"""

from __future__ import annotations

import importlib
import os
from typing import Optional

import numpy as np

#: Environment switch for the kernel tier: unset/"numpy" = vectorized
#: numpy, "numba" = JIT (requires the optional numba extra).
KERNEL_ENV = "DEEPRH_KERNEL"

_NUMBA_LOOKUP = None
_NUMBA_FAILED = False


def numba_available() -> bool:
    """True when the optional numba extra is importable."""
    try:
        importlib.import_module("numba")
    except ImportError:
        return False
    return True


def active_kernel() -> str:
    """The kernel tier lookups run on: ``"numpy"`` or ``"numba"``."""
    if os.environ.get(KERNEL_ENV, "").lower() == "numba" \
            and _numba_lookup() is not None:
        return "numba"
    return "numpy"


def _numba_lookup():
    """Compile the numba tier once; None when unavailable."""
    global _NUMBA_LOOKUP, _NUMBA_FAILED
    if _NUMBA_LOOKUP is not None or _NUMBA_FAILED:
        return _NUMBA_LOOKUP
    try:
        numba = importlib.import_module("numba")

        @numba.njit(cache=True)
        def lookup(breaks, results, limits, out):  # pragma: no cover
            n = breaks.shape[0]
            for j in range(limits.shape[0]):
                limit = limits[j]
                lo, hi = 0, n
                while lo < hi:
                    mid = (lo + hi) // 2
                    if breaks[mid] < limit:
                        lo = mid + 1
                    else:
                        hi = mid
                out[j] = results[lo] if lo < n else -1
            return out

        _NUMBA_LOOKUP = lookup
    except Exception:  # pragma: no cover - any import/compile failure
        _NUMBA_FAILED = True
    return _NUMBA_LOOKUP


def step_lookup(breaks: np.ndarray, results: np.ndarray,
                limits: np.ndarray,
                out: Optional[np.ndarray] = None) -> np.ndarray:
    """Evaluate a step function at ``limits``: ``results[k]`` for the
    smallest ``breaks[k] >= limit``, or ``-1`` past the last breakpoint.

    ``breaks`` must be sorted ascending; NaN limits sort past the end and
    yield ``-1`` (the "never" answer), matching the scalar search.
    ``out`` (int64, same shape as ``limits``) is written in place when
    given — the batched oracle reuses one scratch vector across rows.
    """
    limits = np.ascontiguousarray(limits, dtype=np.float64)
    if out is None:
        out = np.empty(limits.shape, dtype=np.int64)
    if active_kernel() == "numba":  # pragma: no cover - extra not baked in
        return _numba_lookup()(breaks, results, limits, out)
    index = np.searchsorted(breaks, limits, side="left")
    np.take(results, np.minimum(index, len(breaks) - 1), out=out)
    out[index >= len(breaks)] = -1
    return out
