"""Batched analytic oracle: whole sweeps in one numpy pass per row.

Every figure of the paper is a *sweep* — 9 temperatures x hundreds of rows
(Figs. 4-5), 5x5 timing grids (Figs. 7-10) — but the pointwise oracle
(:class:`~repro.faultmodel.model.RowHammerFaultModel`) evaluates one
``(row, temperature, timing)`` point per Python call, rebuilding the
per-cell threshold vector from scratch each time.  This module factors
:meth:`RowCells.thresholds` into its invariant parts:

* ``hc_base / pattern_factor`` and the exposed-bit mask depend only on
  ``(row, pattern)`` — computed once per row;
* the row-level temperature shift ``exp(g(T))`` depends only on ``T`` —
  evaluated as a vector over the whole temperature grid;
* kinetics hammer units depend only on the timing point — evaluated as a
  vector over the timing grid;

and assembles per-row ``(cells x points)`` threshold/HCfirst matrices in
one numpy pass instead of ``P`` separate calls.

**Exactness contract.**  Column ``j`` of every matrix is bit-for-bit equal
to the corresponding pointwise call at point ``j`` (property-tested by
``tests/property/test_batch_oracle.py``).  Two rules make that hold:

* elementwise ``*``, ``/``, comparisons and ``where`` are exactly rounded,
  so any operand grouping that matches the pointwise expression yields
  identical floats — the matrices use exactly the pointwise grouping
  ``(hc_base * shift) / pattern_factor * exp(noise)``;
* transcendentals (``exp``, ``pow``) are *not* vectorized over cells or
  points — the per-point scalars go through the same scalar libm calls the
  pointwise path makes (grids are tiny; cells dominate the cost).
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.data import DataPattern
from repro.faultmodel import temperature as temp_mod
from repro.faultmodel.population import RowCells
from repro.obs import get_metrics, get_tracer

#: A fully-resolved sweep point: (temperature_c, t_on_ns, t_off_ns).
ResolvedPoint = Tuple[float, float, float]


class SharedMatrixCache:
    """Process-wide bounded LRU of oracle threshold parts.

    One campaign's :class:`BatchOracle` keeps a private per-model cache;
    a long-lived service running many campaigns over the same modules
    would rebuild identical matrices once per request.  Installing one of
    these (see :func:`install_shared_matrix_cache`) lets every oracle in
    the process share a single bounded pool instead.

    Safety comes from purity: entries are keyed by the *full* identity of
    what they derive from — the model's seed-tree root and prefix, its
    calibration profile and geometry constants, and the (bank, row,
    pattern, victim, temperatures) coordinates — so a hit can only ever
    return bit-identical values to a rebuild, regardless of which request
    populated it.  Cached arrays are marked read-only; all access is under
    one lock, so concurrent requests in server threads stay coherent.
    """

    def __init__(self, entries: int = 4096, arena=None) -> None:
        if entries < 1:
            raise ValueError("shared matrix cache needs at least one entry")
        self.entries = int(entries)
        self._lock = threading.Lock()
        self._cache: "OrderedDict[tuple, Tuple[np.ndarray, np.ndarray]]" = \
            OrderedDict()
        #: Optional cross-process tier (a :class:`~repro.faultmodel.
        #: shared_arena.SharedArena`): local misses attach to matrices
        #: other worker processes already built, local puts publish for
        #: them.  Purity of the keys makes either tier bit-identical.
        self.arena = arena

    def get(self, key: tuple) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        with self._lock:
            parts = self._cache.get(key)
            if parts is not None:
                self._cache.move_to_end(key)
                return parts
        if self.arena is not None:
            parts = self.arena.fetch(key)
            if parts is not None:
                get_metrics().counter("oracle.arena.attach").inc()
                self._insert(key, parts)
                return parts
        return None

    def put(self, key: tuple,
            parts: Tuple[np.ndarray, np.ndarray]) -> None:
        for array in parts:
            array.setflags(write=False)
        if self.arena is not None and self.arena.store(key, parts):
            get_metrics().counter("oracle.arena.store").inc()
        self._insert(key, parts)

    def _insert(self, key: tuple,
                parts: Tuple[np.ndarray, np.ndarray]) -> None:
        # No size gauge here: the cache outlives any one module, so its
        # size reflects worker-process history (which modules this pool
        # worker happened to run) — scheduling state, not seed state,
        # and exporting it would break the metrics determinism contract.
        # Live size is available via len() (the serve status endpoint).
        metrics = get_metrics()
        with self._lock:
            self._cache[key] = parts
            while len(self._cache) > self.entries:
                self._cache.popitem(last=False)
                metrics.counter("oracle.shared_cache.evicted").inc()

    def resize(self, entries: int) -> int:
        """Shrink (or re-grow) the LRU bound in place; returns evictions.

        The resource governor's *shrink-caches* rung lands here: clamping
        the bound evicts the oldest entries immediately, releasing their
        matrices to the allocator.  Growing the bound back is free.
        Entries only change where matrices come from, never their bytes,
        so resizing mid-service is invisible to result determinism.
        """
        if entries < 1:
            raise ValueError("shared matrix cache needs at least one entry")
        metrics = get_metrics()
        evicted = 0
        with self._lock:
            self.entries = int(entries)
            while len(self._cache) > self.entries:
                self._cache.popitem(last=False)
                evicted += 1
        if evicted:
            metrics.counter("oracle.shared_cache.evicted").inc(evicted)
        return evicted

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()


_shared_cache: Optional[SharedMatrixCache] = None


def install_shared_matrix_cache(cache: Optional[SharedMatrixCache]
                                ) -> Optional[SharedMatrixCache]:
    """Install (or with ``None`` remove) the process-wide shared cache.

    Returns the previously installed cache so callers can restore it.
    Affects only oracles in *this* process: campaign worker processes
    spawn fresh and fall back to their private per-model LRUs.
    """
    global _shared_cache
    previous = _shared_cache
    _shared_cache = cache
    return previous


def shared_matrix_cache() -> Optional[SharedMatrixCache]:
    """The currently installed process-wide cache, if any."""
    return _shared_cache


def model_cache_namespace(model) -> tuple:
    """The identity prefix that makes threshold parts shareable.

    Threshold parts are pure functions of the model's seed tree (root
    seed + path prefix — which embeds the module id), its data-fill seed,
    and the calibration/geometry constants the cell population is drawn
    from.  Two models agreeing on this tuple produce bit-identical parts
    for every (bank, row, pattern, victim, temps) coordinate.
    """
    return (model.tree.root_seed, model.tree.prefix, model.data_seed,
            dataclasses.astuple(model.profile),
            dataclasses.astuple(model.geometry))


@dataclass(frozen=True)
class OraclePoint:
    """One (temperature, tAggOn, tAggOff) evaluation point of a sweep.

    ``None`` fields inherit the tester/module defaults at evaluation time,
    exactly like the corresponding keyword arguments of the pointwise
    :meth:`~repro.testing.hammer.HammerTester.ber_test` /
    :meth:`~repro.testing.hammer.HammerTester.hcfirst`.
    """

    temperature_c: Optional[float] = None
    t_on_ns: Optional[float] = None
    t_off_ns: Optional[float] = None


def temperature_sweep(temperatures_c: Sequence[float],
                      t_on_ns: Optional[float] = None,
                      t_off_ns: Optional[float] = None) -> List[OraclePoint]:
    """Sweep points over a temperature grid at one (optional) timing."""
    return [OraclePoint(float(t), t_on_ns, t_off_ns) for t in temperatures_c]


def timing_sweep(timings_ns: Sequence[Tuple[Optional[float], Optional[float]]],
                 temperature_c: Optional[float] = None) -> List[OraclePoint]:
    """Sweep points over ``(t_on, t_off)`` pairs at one temperature."""
    return [OraclePoint(temperature_c, on, off) for on, off in timings_ns]


def dedupe_temperatures(temperatures: Sequence[float]
                        ) -> Tuple[List[float], List[int]]:
    """``(unique, index)`` such that ``unique[index[j]] == temperatures[j]``.

    Timing sweeps hold temperature fixed, so the expensive per-temperature
    columns collapse to one; temperature sweeps pass through unchanged.
    """
    unique: List[float] = []
    index: List[int] = []
    seen: Dict[float, int] = {}
    for t in temperatures:
        k = seen.get(t)
        if k is None:
            k = len(unique)
            seen[t] = k
            unique.append(t)
        index.append(k)
    return unique, index


def dedupe_points(temp_index: Sequence[int], units: np.ndarray
                  ) -> Tuple[List[Tuple[int, float]], np.ndarray]:
    """Unique ``(temperature-column, damage-unit)`` pairs + gather index.

    A sweep's points collapse to few distinct evaluations: a temperature
    sweep shares one unit, a timing sweep one temperature column.  The
    expensive per-cell arithmetic runs once per pair; per-point answers
    are exact gathers (the same operands in the same operations).
    """
    pairs: List[Tuple[int, float]] = []
    seen: Dict[Tuple[int, float], int] = {}
    inverse = np.empty(len(temp_index), dtype=np.intp)
    for j, key in enumerate(zip(temp_index, units.tolist())):
        k = seen.get(key)
        if k is None:
            k = seen[key] = len(pairs)
            pairs.append(key)
        inverse[j] = k
    return pairs, inverse


def group_points(temp_index: Sequence[int], timing_index: Sequence[int],
                 n_timings: int) -> Tuple[np.ndarray, np.ndarray]:
    """``(representative, inverse)`` for unique (temperature, timing) keys.

    Points sharing a key resolve to identical ``(temperature column,
    damage unit)`` operands — the timing determines the unit — so one
    grouping, computed once per sweep, serves every observed distance.
    ``representative[k]`` is a point index belonging to group ``k``;
    ``inverse[j]`` is point ``j``'s group.
    """
    combined = (np.asarray(temp_index, dtype=np.int64) * n_timings
                + np.asarray(timing_index, dtype=np.int64))
    _, representative, inverse = np.unique(combined, return_index=True,
                                           return_inverse=True)
    return representative, inverse


def threshold_parts(cells: RowCells, temperatures: Sequence[float],
                    pattern: DataPattern, victim_row: int,
                    data_seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """``(base, mask)``: the trial-noise-independent threshold factors.

    ``base`` is the raw ``(cells x temperatures)`` threshold matrix before
    masking; ``mask`` is the active-and-exposed cell mask.  Both depend
    only on ``(row, pattern, victim, temperatures)`` — never on the trial
    repetition — so callers can cache them across repeated sweeps and
    apply per-trial noise on top.
    """
    # Scalar exp per grid point: same libm calls as the pointwise path.
    shift = np.array([np.exp(cells.temperature_shift(t))
                      for t in temperatures])
    base = (cells.hc_base[:, None] * shift[None, :]
            / cells.pattern_factor(pattern)[:, None])
    exposed = cells.stored_bits(pattern, victim_row, data_seed) == cells.vul_value
    active = temp_mod.active_mask_grid(cells.t_lo, cells.t_hi, cells.gap,
                                       temperatures)
    return base, active & exposed[:, None]


def threshold_matrix(cells: RowCells, temperatures: Sequence[float],
                     pattern: DataPattern, victim_row: int,
                     data_seed: int = 0,
                     trial_noise: Optional[np.ndarray] = None) -> np.ndarray:
    """``(cells x temperatures)`` damage-unit threshold matrix.

    Column ``j`` is bit-identical to ``cells.thresholds(temperatures[j],
    pattern, victim_row, data_seed)`` with ``exp(trial_noise)`` applied as
    the pointwise path would apply a trial generator's draw.
    """
    matrix, mask = threshold_parts(cells, temperatures, pattern, victim_row,
                                   data_seed)
    # ``matrix`` is freshly built here (no cache), so mask in place: the
    # multiply and the inf-fill touch the same elements with the same
    # operations as the old ``np.where(mask, matrix, np.inf)`` full copy.
    assert matrix.dtype == np.float64 and mask.dtype == np.bool_
    if trial_noise is not None and cells.trial_sigma > 0.0:
        np.multiply(matrix, np.exp(trial_noise)[:, None], out=matrix)
    np.copyto(matrix, np.inf, where=~mask)
    return matrix


class BatchOracle:
    """Grid evaluation of one module's analytic oracle.

    Bound to a :class:`~repro.faultmodel.model.RowHammerFaultModel`; shares
    its population, kinetics and data seed, so batched and pointwise
    answers come from the same constants by construction.

    The noise-independent threshold factors (:func:`threshold_parts`) are
    kept in a small LRU cache: repeated sweeps over the same row — HCfirst
    repetitions, a BER test following an HCfirst search — skip straight to
    the per-trial noise multiply.  Entries never go stale because the
    parts are pure in the cache key and the model's fixed constants.
    """

    #: Default bound on cached threshold-part entries (a few KB each).
    MATRIX_CACHE_ENTRIES = 256

    def __init__(self, model,
                 matrix_cache_entries: int = MATRIX_CACHE_ENTRIES) -> None:
        self.model = model
        self._matrix_cache: \
            "OrderedDict[tuple, Tuple[np.ndarray, np.ndarray]]" = OrderedDict()
        self._matrix_cache_entries = int(matrix_cache_entries)
        self._namespace: Optional[tuple] = None
        # Reused masking scratch: one (cells x temps) float64 buffer and
        # one bool buffer, grown as needed, instead of a fresh full-matrix
        # copy per sweep (`np.where(mask, matrix, np.inf)` allocated two).
        # Never escapes `_pair_hcfirst`, so reuse cannot alias results.
        self._masked_scratch = np.empty((0, 0), dtype=np.float64)
        self._notmask_scratch = np.empty((0, 0), dtype=np.bool_)

    def _masked_parts(self, matrix: np.ndarray, mask: np.ndarray,
                      trial_noise: Optional[np.ndarray],
                      trial_sigma: float) -> np.ndarray:
        """Noise-scaled, inf-masked thresholds in the reused scratch.

        Element-for-element the same operations as the old
        ``matrix * exp(noise)[:, None]`` + ``np.where(mask, ., np.inf)``
        pair, written into preallocated buffers.  The hot path stays in
        float64/bool end to end — the asserts pin that down so a silent
        upcast (e.g. a float128 operand sneaking in) cannot cost silently.
        """
        assert matrix.dtype == np.float64 and mask.dtype == np.bool_
        if self._masked_scratch.shape != matrix.shape:
            self._masked_scratch = np.empty(matrix.shape, dtype=np.float64)
            self._notmask_scratch = np.empty(matrix.shape, dtype=np.bool_)
        scratch = self._masked_scratch
        if trial_noise is not None and trial_sigma > 0.0:
            np.multiply(matrix, np.exp(trial_noise)[:, None], out=scratch)
        else:
            np.copyto(scratch, matrix)
        notmask = np.logical_not(mask, out=self._notmask_scratch)
        np.copyto(scratch, np.inf, where=notmask)
        assert scratch.dtype == np.float64
        return scratch

    def clear_cache(self) -> None:
        """Drop the cached threshold parts (memory pressure only)."""
        self._matrix_cache.clear()

    def _threshold_parts(self, cells: RowCells, bank: int, observed_row: int,
                         pattern: DataPattern, victim_row: int,
                         temps: Sequence[float]
                         ) -> Tuple[np.ndarray, np.ndarray]:
        key = (bank, observed_row, pattern.name, victim_row, tuple(temps))
        metrics = get_metrics()
        shared = shared_matrix_cache()
        if shared is not None:
            if self._namespace is None:
                self._namespace = model_cache_namespace(self.model)
            shared_key = self._namespace + key
            parts = shared.get(shared_key)
            if parts is None:
                metrics.counter("oracle.shared_cache.miss").inc()
                with get_tracer().span("oracle.matrix_build", bank=bank,
                                       row=observed_row, temps=len(temps)):
                    parts = threshold_parts(cells, temps, pattern,
                                            victim_row, self.model.data_seed)
                shared.put(shared_key, parts)
            else:
                metrics.counter("oracle.shared_cache.hit").inc()
            return parts
        parts = self._matrix_cache.get(key)
        if parts is None:
            metrics.counter("oracle.cache.miss").inc()
            with get_tracer().span("oracle.matrix_build", bank=bank,
                                   row=observed_row, temps=len(temps)):
                parts = threshold_parts(cells, temps, pattern, victim_row,
                                        self.model.data_seed)
            self._matrix_cache[key] = parts
            if len(self._matrix_cache) > self._matrix_cache_entries:
                self._matrix_cache.popitem(last=False)
                metrics.counter("oracle.cache.evicted").inc()
            metrics.gauge("oracle.cache.size").set(len(self._matrix_cache))
        else:
            metrics.counter("oracle.cache.hit").inc()
            self._matrix_cache.move_to_end(key)
        return parts

    # ------------------------------------------------------------------
    def hammer_units(self, observed_row: int, aggressors: Sequence[int],
                     points: Sequence[ResolvedPoint]) -> np.ndarray:
        """Per-point damage units one hammer deposits in ``observed_row``."""
        timing = self.model.timing
        ons = [timing.tRAS if p[1] is None else p[1] for p in points]
        offs = [timing.tRP if p[2] is None else p[2] for p in points]
        return self.model.kinetics.hammer_units_grid(observed_row, aggressors,
                                                     ons, offs)

    def _pair_hcfirst(self, bank: int, observed_row: int,
                      pattern: DataPattern, victim_row: int,
                      points: Sequence[ResolvedPoint], units: np.ndarray,
                      trial_noise: Optional[np.ndarray],
                      deduped: Optional[Tuple[List[float], List[int]]] = None,
                      groups: Optional[Tuple[np.ndarray, np.ndarray]] = None
                      ) -> Tuple[RowCells, Optional[np.ndarray], np.ndarray]:
        """``(cells, hcfirst-per-unique-pair, gather-index)`` for a sweep.

        The HCfirst matrix is computed once per distinct ``(temperature,
        unit)`` pair; ``matrix[:, inverse]`` reconstructs the full
        per-point matrix exactly (column ``j`` of the full matrix *is*
        pair column ``inverse[j]`` — same operands, same operations).
        ``deduped``/``groups`` let a caller running several distances over
        one sweep hoist :func:`dedupe_temperatures` / :func:`group_points`
        out of the per-distance loop.
        """
        model = self.model
        cells = model.population.cells_for(bank, observed_row)
        if not len(cells):
            return cells, None, np.empty(len(points), dtype=np.intp)
        temps, temp_index = deduped if deduped is not None \
            else dedupe_temperatures([p[0] for p in points])
        matrix, mask = self._threshold_parts(cells, bank, observed_row,
                                             pattern, victim_row, temps)
        masked = self._masked_parts(matrix, mask, trial_noise,
                                    cells.trial_sigma)
        if groups is not None:
            representative, inverse = groups
            cols = np.asarray(temp_index, dtype=np.intp)[representative]
            pair_units = units[representative]
        else:
            pairs, inverse = dedupe_points(temp_index, units)
            cols = np.asarray([col for col, _ in pairs], dtype=np.intp)
            pair_units = np.array([unit for _, unit in pairs])
        # One gather allocation, divided in place (the gather must
        # allocate anyway: its result is what escapes to the caller).
        hcfirst = np.take(masked, cols, axis=1)
        with np.errstate(divide="ignore"):
            np.divide(hcfirst, pair_units[None, :], out=hcfirst)
        assert hcfirst.dtype == np.float64
        get_metrics().counter("oracle.grid.solves").inc()
        return cells, hcfirst, inverse

    def cell_hcfirst_matrix(self, bank: int, observed_row: int,
                            pattern: DataPattern, victim_row: int,
                            aggressors: Sequence[int],
                            points: Sequence[ResolvedPoint],
                            units: Optional[np.ndarray] = None,
                            trial_noise: Optional[np.ndarray] = None,
                            deduped=None, groups=None
                            ) -> Tuple[RowCells, np.ndarray, np.ndarray]:
        """``(cells, units, (cells x points))`` HCfirst matrix in one pass.

        Column ``j`` is bit-identical to
        :meth:`RowHammerFaultModel.cell_hcfirst` at ``points[j]`` with the
        same trial noise applied (callers own the noise draw so one vector
        can be reused across points, matching the pointwise RNG stream).
        Zero-unit points divide to ``inf``, the pointwise "unreachable"
        answer.
        """
        if units is None:
            units = self.hammer_units(observed_row, aggressors, points)
        cells, hcfirst, inverse = self._pair_hcfirst(
            bank, observed_row, pattern, victim_row, points, units,
            trial_noise, deduped, groups)
        if hcfirst is None:
            return cells, units, np.empty((0, len(points)))
        return cells, units, hcfirst[:, inverse]

    def point_flip_matrix(self, bank: int, observed_row: int,
                          pattern: DataPattern, victim_row: int,
                          aggressors: Sequence[int],
                          points: Sequence[ResolvedPoint], hammer_count: int,
                          units: Optional[np.ndarray] = None,
                          trial_noise: Optional[np.ndarray] = None,
                          deduped=None, groups=None
                          ) -> Tuple[RowCells, np.ndarray, np.ndarray]:
        """``(cells, units, bool (cells x points))`` flip matrix.

        ``[i, j]`` is True iff cell ``i`` flips within ``hammer_count``
        hammers at ``points[j]`` — identical to thresholding the full
        HCfirst matrix, but compared once per unique pair and gathered as
        booleans (a byte per element instead of a float).
        """
        if units is None:
            units = self.hammer_units(observed_row, aggressors, points)
        cells, hcfirst, inverse = self._pair_hcfirst(
            bank, observed_row, pattern, victim_row, points, units,
            trial_noise, deduped, groups)
        if hcfirst is None:
            return cells, units, np.empty((0, len(points)), dtype=bool)
        return cells, units, (hcfirst <= hammer_count)[:, inverse]

    def row_hcfirst_vector(self, bank: int, observed_row: int,
                           pattern: DataPattern, victim_row: int,
                           aggressors: Sequence[int],
                           points: Sequence[ResolvedPoint],
                           units: Optional[np.ndarray] = None,
                           trial_noise: Optional[np.ndarray] = None,
                           deduped=None, groups=None
                           ) -> np.ndarray:
        """Per-point row HCfirst (min over cells; ``inf`` = never flips).

        The minimum runs once per unique pair — the per-point minima are
        gathers of the pair minima (same value set, same reduction).
        """
        if units is None:
            units = self.hammer_units(observed_row, aggressors, points)
        cells, hcfirst, inverse = self._pair_hcfirst(
            bank, observed_row, pattern, victim_row, points, units,
            trial_noise, deduped, groups)
        if hcfirst is None:
            return np.full(len(points), np.inf)
        return hcfirst.min(axis=0)[inverse]
