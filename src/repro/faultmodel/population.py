"""Vulnerable-cell populations: the lazily-generated per-row cell arrays.

A DRAM row contains a sparse set of RowHammer-vulnerable cells.  Rather than
modelling every bit of a 64 K-row bank, the population generator materializes
the vulnerable cells of a row on first touch, deterministically from the
module's seed tree — the same row always yields the same cells, in any
access order.

Each cell carries everything the fault model needs to decide whether it
flips: its location (chip, column, bit), its damage threshold in hammer
units, its vulnerable temperature range, its charged ("vulnerable") bit
value, and its per-data-pattern sensitivity.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dram.data import DataPattern, PATTERNS, pattern_index
from repro.errors import ConfigError
from repro.dram.geometry import Geometry
from repro.faultmodel import temperature as temp_mod
from repro.faultmodel import variation
from repro.faultmodel.profiles import MfrProfile
from repro.obs import get_metrics
from repro.rng import SeedSequenceTree


@dataclass
class RowCells:
    """Vulnerable cells of one physical row.

    All arrays share the same length (the number of vulnerable cells).
    ``s``, ``q``, ``z`` are the row-level temperature-response parameters
    shared by the row's cells (see
    :func:`repro.faultmodel.variation.row_temperature_response`).
    """

    bank: int
    row: int
    chip: np.ndarray          # int16
    col: np.ndarray           # int32
    bit: np.ndarray           # int8
    hc_base: np.ndarray       # float64, hammer units at reference conditions
    t_lo: np.ndarray          # float64, degC
    t_hi: np.ndarray          # float64, degC
    gap: np.ndarray           # float64, degC or NaN
    vul_value: np.ndarray     # int8: bit value that exposes the cell
    pattern_factors: np.ndarray  # float64, shape (n, len(PATTERNS))
    s: float
    q: float
    z: float
    walk_sd: float
    trial_sigma: float
    _stored_bit_cache: Dict[Tuple[str, int], np.ndarray] = field(
        default_factory=dict, repr=False)

    def __len__(self) -> int:
        return int(self.hc_base.shape[0])

    # ------------------------------------------------------------------
    def temperature_shift(self, temperature_c: float) -> float:
        """Row-level ``g(T)``: log-space shift of every cell's threshold."""
        return variation.temperature_log_shift(
            self.s, self.q, self.z, self.walk_sd, temperature_c)

    def active_at(self, temperature_c: float) -> np.ndarray:
        """Mask of cells inside their vulnerable range at this temperature."""
        return temp_mod.active_mask(self.t_lo, self.t_hi, self.gap, temperature_c)

    def stored_bits(self, pattern: DataPattern, victim_row: int,
                    seed: int = 0) -> np.ndarray:
        """Bit each cell holds when ``pattern`` is installed around ``victim_row``."""
        # Non-random patterns depend only on the row's distance parity from
        # the victim; random fills depend only on (row, col, chip).  A module
        # uses a single data seed, so the seed is not part of the key.
        key = (pattern.name, 0 if pattern.is_random else (self.row - victim_row) % 2)
        cached = self._stored_bit_cache.get(key)
        if cached is not None:
            return cached
        bits = pattern.bits_for_cells(self.row, victim_row, self.col,
                                      self.chip, self.bit, seed)
        self._stored_bit_cache[key] = bits
        return bits

    def pattern_factor(self, pattern: DataPattern) -> np.ndarray:
        """Per-cell damage multiplier under ``pattern``."""
        return self.pattern_factors[:, pattern_index(pattern.name)]

    # ------------------------------------------------------------------
    def thresholds(self, temperature_c: float, pattern: DataPattern,
                   victim_row: int, data_seed: int = 0,
                   trial_gen: Optional[np.random.Generator] = None) -> np.ndarray:
        """Damage-unit thresholds per cell under the given conditions.

        Inactive cells (temperature outside their range, or stored bit not
        equal to their charged value) get ``inf``.  Dividing a cell's
        threshold by the per-hammer damage units of an access pattern yields
        its HCfirst under that pattern.
        """
        shift = np.exp(self.temperature_shift(temperature_c))
        thresholds = self.hc_base * shift / self.pattern_factor(pattern)
        if trial_gen is not None and self.trial_sigma > 0.0:
            thresholds = thresholds * np.exp(
                trial_gen.normal(0.0, self.trial_sigma, size=len(self)))
        exposed = self.stored_bits(pattern, victim_row, data_seed) == self.vul_value
        active = self.active_at(temperature_c)
        out = np.where(active & exposed, thresholds, np.inf)
        return out


#: Default bound on the per-row cell cache.  Long sweeps (the column
#: campaign alone touches thousands of rows) previously needed manual
#: ``clear_cache()`` calls to bound memory; the LRU makes that automatic
#: while keeping every hot row resident.
DEFAULT_ROW_CACHE_ROWS = 4096

_default_row_cache_rows = DEFAULT_ROW_CACHE_ROWS


def set_default_row_cache_rows(rows: Optional[int]) -> int:
    """Set the process-wide default row-cache bound; returns the previous.

    ``None`` restores the library default.  Populations constructed after
    the call pick up the new bound; existing populations are unchanged.
    Purely a memory knob — regeneration is deterministic, so the bound
    never changes science.  Set from ``deeprh serve``/``deeprh campaign``
    flags and ``[tool.deeprh.cache]``, and inside campaign worker
    processes before a module runs.
    """
    global _default_row_cache_rows
    if rows is not None and rows < 1:
        raise ConfigError("row_cache_rows must be >= 1")
    previous = _default_row_cache_rows
    _default_row_cache_rows = DEFAULT_ROW_CACHE_ROWS if rows is None \
        else int(rows)
    return previous


def default_row_cache_rows() -> int:
    """The row-cache bound populations are built with by default."""
    return _default_row_cache_rows


class CellPopulation:
    """Deterministic generator and LRU cache of per-row vulnerable cells."""

    def __init__(self, profile: MfrProfile, geometry: Geometry,
                 tree: SeedSequenceTree,
                 row_cache_rows: Optional[int] = None) -> None:
        if row_cache_rows is None:
            row_cache_rows = _default_row_cache_rows
        if row_cache_rows < 1:
            raise ConfigError("row_cache_rows must be >= 1")
        self.profile = profile
        self.geometry = geometry
        self.tree = tree
        self.row_cache_rows = int(row_cache_rows)
        self._module_factor = variation.module_factor(tree, profile)
        self._base_constant = variation.base_constant(profile)
        self._column_weights = variation.column_weight_field(tree, profile, geometry)
        self._flat_weights = self._column_weights.ravel()
        self._subarray_cache: Dict[Tuple[int, int], float] = {}
        self._row_cache: "OrderedDict[Tuple[int, int], RowCells]" = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def module_factor(self) -> float:
        return self._module_factor

    @property
    def column_weights(self) -> np.ndarray:
        """(chips, cols) placement probability field (sums to 1)."""
        return self._column_weights

    def subarray_factor(self, bank: int, subarray: int) -> float:
        key = (bank, subarray)
        if key not in self._subarray_cache:
            self._subarray_cache[key] = variation.subarray_factor(
                self.tree, self.profile, bank, subarray)
        return self._subarray_cache[key]

    def clear_cache(self) -> None:
        """Drop every generation cache (rows *and* subarray factors).

        Purely a memory knob: regeneration is deterministic from the seed
        tree, so dropped entries come back identical on next touch.
        """
        self._row_cache.clear()
        self._subarray_cache.clear()

    # ------------------------------------------------------------------
    def cells_for(self, bank: int, row: int) -> RowCells:
        """The vulnerable cells of physical ``row`` in ``bank`` (LRU-cached)."""
        key = (bank, row)
        metrics = get_metrics()
        cached = self._row_cache.get(key)
        if cached is not None:
            self._row_cache.move_to_end(key)
            metrics.counter("population.row_cache.hit").inc()
            return cached
        metrics.counter("population.row_cache.miss").inc()
        cells = self._generate(bank, row)
        self._row_cache[key] = cells
        if len(self._row_cache) > self.row_cache_rows:
            self._row_cache.popitem(last=False)
            metrics.counter("population.row_cache.evicted").inc()
        return cells

    def _generate(self, bank: int, row: int) -> RowCells:
        geometry, profile = self.geometry, self.profile
        geometry.check_bank(bank)
        geometry.check_row(row)
        gen = self.tree.generator("row-cells", bank, row)

        n = int(gen.poisson(profile.cells_per_row_mean))
        subarray = geometry.subarray_of(row)
        row_scale = (self._base_constant
                     * self._module_factor
                     * self.subarray_factor(bank, subarray)
                     * variation.row_factor(self.tree, profile, bank, row))

        placement = gen.choice(self._flat_weights.size, size=n,
                               p=self._flat_weights) if n else np.empty(0, int)
        chip = (placement // geometry.cols_per_row).astype(np.int16)
        col = (placement % geometry.cols_per_row).astype(np.int32)
        bit = gen.integers(0, geometry.bits_per_col, size=n).astype(np.int8)

        # Bounded power-law cell factors: F(x) = x**k on (0, 1].  See
        # variation.expected_min_cell_factor for why this shape is needed.
        cell_factor = gen.random(size=n) ** (1.0 / profile.cell_tail_exponent)
        hc_base = row_scale * cell_factor
        t_lo, t_hi, gap = temp_mod.sample_ranges(gen, profile, n)
        vul_value = gen.integers(0, 2, size=n).astype(np.int8)

        bias = np.asarray(profile.pattern_bias)
        factors = np.exp(bias[None, :]
                         + gen.normal(0.0, profile.pattern_sd,
                                      size=(n, len(PATTERNS))))
        np.clip(factors, 0.25, 4.0, out=factors)

        s, q, z = variation.row_temperature_response(self.tree, profile, bank, row)
        return RowCells(
            bank=bank, row=row, chip=chip, col=col, bit=bit, hc_base=hc_base,
            t_lo=t_lo, t_hi=t_hi, gap=gap, vul_value=vul_value,
            pattern_factors=factors, s=s, q=q, z=z,
            walk_sd=profile.temp_walk_sd, trial_sigma=profile.trial_sigma,
        )
