"""Physics-inspired RowHammer fault model.

This package is the simulation substitute for the paper's 272 real DRAM
chips.  It produces per-cell bit-flip behaviour as a joint function of

* hammer count (``HCfirst`` thresholds with log-normal spatial structure),
* temperature (per-cell bounded vulnerable ranges, per-row response curves),
* aggressor row active/precharged time (electron-injection vs. cross-talk
  kinetics), and
* physical location (row / subarray / column / chip variation fields),

calibrated per manufacturer profile so that every figure and table of the
paper can be regenerated with the same *shape* the authors measured.
"""

from repro.faultmodel.profiles import MfrProfile, PROFILES, profile_for
from repro.faultmodel.kinetics import DisturbanceKinetics
from repro.faultmodel.population import RowCells, CellPopulation
from repro.faultmodel.model import RowHammerFaultModel
from repro.faultmodel.batch import (
    BatchOracle,
    OraclePoint,
    temperature_sweep,
    timing_sweep,
)

__all__ = [
    "MfrProfile",
    "PROFILES",
    "profile_for",
    "DisturbanceKinetics",
    "RowCells",
    "CellPopulation",
    "RowHammerFaultModel",
    "BatchOracle",
    "OraclePoint",
    "temperature_sweep",
    "timing_sweep",
]
