"""SoftMC-like memory-controller substrate.

Models the paper's FPGA testing infrastructure (Section 4.1): a host-driven
memory controller that issues raw DRAM command sequences with precise,
programmable timings and **no** self-regulation (no auto-refresh, no
scheduler) so circuit-level RowHammer behaviour is observable.

Programs are small instruction lists with hardware-style loops, mirroring
how SoftMC offloads tight hammer loops to the FPGA.
"""

from repro.softmc.program import (
    HammerLoop,
    Instruction,
    Loop,
    Program,
)
from repro.softmc.trace import CommandTrace
from repro.softmc.controller import SoftMCController
from repro.softmc.session import SoftMCSession

__all__ = [
    "Instruction",
    "Loop",
    "HammerLoop",
    "Program",
    "CommandTrace",
    "SoftMCController",
    "SoftMCSession",
]
