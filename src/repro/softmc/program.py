"""SoftMC instruction programs.

A :class:`Program` is a list of timed instructions.  Each instruction wraps
a DRAM command plus the *issue gap*: the time until the next instruction
may issue, quantized to the infrastructure's command granularity (1.25 ns
for DDR4, 2.5 ns for DDR3 — Section 4.1).

Loops mirror SoftMC's hardware loop support: the FPGA repeats a short
command kernel millions of times with cycle-exact timing.
:class:`HammerLoop` is the specialized kernel used by every hammer test —
the controller executes it analytically (validating one iteration, then
accruing the aggregate effect), which is what makes large parameter sweeps
tractable while staying faithful to the command stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

from repro.dram.commands import Command
from repro.errors import ConfigError


@dataclass(frozen=True)
class Instruction:
    """One DRAM command plus the gap before the next instruction issues."""

    command: Command
    gap_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.gap_ns < 0:
            raise ConfigError("instruction gap must be non-negative")


@dataclass(frozen=True)
class Loop:
    """Repeat ``body`` ``count`` times (general-purpose hardware loop)."""

    count: int
    body: Tuple["ProgramStep", ...]

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigError("loop count must be non-negative")
        if not self.body:
            raise ConfigError("loop body must not be empty")


@dataclass(frozen=True)
class HammerLoop:
    """The double/many-sided hammer kernel, executed natively by the FPGA.

    One iteration activates each aggressor in order, holding it open for
    ``t_on_ns`` and keeping the bank precharged for ``t_off_ns`` before the
    next activation.  ``reads_per_activation`` column reads are issued while
    the row is open (Attack Improvement 3 uses these to stretch the
    aggressor's active time on systems where timings are fixed).
    """

    count: int
    bank: int
    aggressor_rows: Tuple[int, ...]
    t_on_ns: float
    t_off_ns: float
    reads_per_activation: int = 0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigError("hammer count must be non-negative")
        if not self.aggressor_rows:
            raise ConfigError("hammer loop needs at least one aggressor")
        if self.t_on_ns <= 0 or self.t_off_ns <= 0:
            raise ConfigError("hammer loop timings must be positive")
        if self.reads_per_activation < 0:
            raise ConfigError("reads_per_activation must be non-negative")

    @property
    def iteration_ns(self) -> float:
        """Wall-clock duration of one hammer iteration."""
        return len(self.aggressor_rows) * (self.t_on_ns + self.t_off_ns)

    @property
    def total_ns(self) -> float:
        """Wall-clock duration of the whole loop."""
        return self.count * self.iteration_ns


ProgramStep = Union[Instruction, Loop, HammerLoop]


@dataclass
class Program:
    """An executable SoftMC program."""

    steps: List[ProgramStep] = field(default_factory=list)

    def add(self, step: ProgramStep) -> "Program":
        self.steps.append(step)
        return self

    def extend(self, steps: Sequence[ProgramStep]) -> "Program":
        self.steps.extend(steps)
        return self

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)
