"""Host-machine session: the user-facing handle on one testing setup.

Combines the module under test, the SoftMC controller and (optionally) the
temperature chamber into the workflow of Section 4.2:

1. set and settle the chip temperature,
2. install a data pattern into the victim's neighborhood,
3. hammer with precise command timings,
4. read back and collect bit flips.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dram.commands import Activate, Nop, Precharge, Read
from repro.dram.data import DataPattern
from repro.dram.module import BitFlip, DRAMModule
from repro.dram.refresh import RetentionGuard
from repro.errors import ConfigError, SubstrateFault, ThermalError
from repro.softmc.controller import ExecutionResult, SoftMCController
from repro.softmc.program import HammerLoop, Instruction, Program
from repro.softmc.trace import CommandTrace

#: Fallback settling tolerance when the chamber does not publish one
#: (the paper's +/-0.1 degC measurement error bound, Section 4.1).
TEMPERATURE_TOLERANCE_C = 0.1


class SoftMCSession:
    """One host <-> FPGA <-> module testing session."""

    def __init__(self, module: DRAMModule, chamber=None,
                 trace: Optional[CommandTrace] = None,
                 retention_guard: Optional[RetentionGuard] = None,
                 faults=None) -> None:
        self.module = module
        self.chamber = chamber
        self.faults = faults
        self.controller = SoftMCController(
            module, trace=trace, retention_guard=retention_guard,
            faults=faults)
        self._hammer_calls = 0

    # ------------------------------------------------------------------
    # Temperature
    # ------------------------------------------------------------------
    def set_temperature(self, target_c: float) -> float:
        """Bring the module to ``target_c`` (within +/-0.1 degC).

        With a chamber attached this runs the PID settling loop and
        *validates* the reached temperature against the tolerance band:
        a chamber that reports convergence off-target (drift, overshoot)
        raises :class:`ThermalError` instead of silently running the
        experiment at the wrong temperature.  Without a chamber the module
        is set directly (ideal chamber), which is what the large sweeps
        use.
        """
        if self.chamber is not None:
            reached = self.chamber.settle(target_c)
            tolerance = getattr(self.chamber, "tolerance_c",
                                TEMPERATURE_TOLERANCE_C)
            if abs(reached - target_c) > tolerance + 1e-9:
                raise ThermalError(
                    f"chamber settled {abs(reached - target_c):.2f} degC off "
                    f"target ({reached:.2f} vs {target_c:.2f} degC, "
                    f"tolerance +/-{tolerance} degC)")
            self.module.temperature_c = reached
            return reached
        self.module.temperature_c = float(target_c)
        return float(target_c)

    # ------------------------------------------------------------------
    # Data preparation
    # ------------------------------------------------------------------
    def install_pattern(self, bank: int, victim_row: int, pattern: DataPattern,
                        halo: int = 8) -> List[int]:
        """Install ``pattern`` in the victim's *physical* neighborhood.

        Mirrors Table 1: the pattern covers the victim and the ``halo``
        physically-adjacent rows on each side, with parity anchored at the
        victim's physical address.  Returns the logical rows written.
        """
        phys_victim = self.module.to_physical(victim_row)
        rows = [
            self.module.to_logical(phys)
            for phys in range(phys_victim - halo, phys_victim + halo + 1)
            if 0 <= phys < self.module.geometry.rows_per_bank
        ]
        self.module.install_pattern(bank, rows, pattern, victim_row)
        return rows

    # ------------------------------------------------------------------
    # Hammering
    # ------------------------------------------------------------------
    def double_sided_aggressors(self, bank: int, victim_row: int) -> Tuple[int, int]:
        """Logical addresses of the victim's two physical neighbors."""
        neighbors = self.module.mapping.physical_neighbors_logical(victim_row, 1)
        if len(neighbors) != 2:
            raise ConfigError(
                f"victim row {victim_row} is at the bank edge; double-sided "
                "hammering needs both physical neighbors")
        return neighbors[0], neighbors[1]

    def hammer(self, bank: int, aggressor_rows: Sequence[int], count: int,
               t_on_ns: Optional[float] = None,
               t_off_ns: Optional[float] = None,
               reads_per_activation: int = 0) -> ExecutionResult:
        """Run a hammer loop over logical ``aggressor_rows``.

        With a fault plan attached, the host<->FPGA link can drop mid-call
        (an injected session reset), surfacing as a retryable
        :class:`SubstrateFault` before any activation is issued.
        """
        self._hammer_calls += 1
        if self.faults is not None:
            event = self.faults.roll("softmc.session", self._hammer_calls)
            if event is not None:
                raise SubstrateFault(
                    f"SoftMC session reset during hammer call "
                    f"#{self._hammer_calls} (link dropped)",
                    site="softmc.session", kind=event.kind)
        timing = self.module.timing
        loop = HammerLoop(
            count=count,
            bank=bank,
            aggressor_rows=tuple(aggressor_rows),
            t_on_ns=timing.tRAS if t_on_ns is None else t_on_ns,
            t_off_ns=timing.tRP if t_off_ns is None else t_off_ns,
            reads_per_activation=reads_per_activation,
        )
        return self.controller.execute(Program([loop]))

    def hammer_double_sided(self, bank: int, victim_row: int, count: int,
                            t_on_ns: Optional[float] = None,
                            t_off_ns: Optional[float] = None,
                            reads_per_activation: int = 0) -> ExecutionResult:
        """Double-sided hammer: ``count`` aggressor-pair activations."""
        aggressors = self.double_sided_aggressors(bank, victim_row)
        return self.hammer(bank, aggressors, count, t_on_ns, t_off_ns,
                           reads_per_activation)

    def hammer_single_sided(self, bank: int, aggressor_row: int, count: int,
                            t_on_ns: Optional[float] = None,
                            t_off_ns: Optional[float] = None) -> ExecutionResult:
        """Single-sided hammer of one aggressor (used by mapping recovery)."""
        return self.hammer(bank, (aggressor_row,), count, t_on_ns, t_off_ns)

    # ------------------------------------------------------------------
    # Read-back
    # ------------------------------------------------------------------
    def collect_flips(self, bank: int, row: int) -> List[BitFlip]:
        """Read one row back and return its bit flips (fast path)."""
        return self.module.harvest_flips(bank, row)

    def read_row_bytes(self, bank: int, row: int) -> bytes:
        """Command-accurate whole-row read through ACT / RD* / PRE."""
        timing = self.module.timing
        n_cols = self.module.geometry.cols_per_row
        # Leave tRP of settling time in case the bank was just precharged.
        program = Program([Instruction(Nop(1), gap_ns=timing.tRP),
                           Instruction(Activate(bank, row), gap_ns=timing.tRCD)])
        for col in range(n_cols):
            program.add(Instruction(Read(bank, col), gap_ns=timing.tCCD))
        # Honor tRAS before closing the row (matters for very short rows).
        open_time = timing.tRCD + n_cols * timing.tCCD
        if open_time < timing.tRAS:
            program.add(Instruction(Nop(1), gap_ns=timing.tRAS - open_time))
        program.add(Instruction(Precharge(bank), gap_ns=timing.tRP))
        result = self.controller.execute(program)
        data = bytearray()
        for _, _, _, chunk in sorted(result.reads, key=lambda r: r[2]):
            data.extend(chunk)
        return bytes(data)
