"""Command trace: a bounded record of issued DRAM commands.

Useful for debugging programs, asserting command-level behaviour in tests,
and feeding memory-controller-side defense mechanisms that observe the
activation stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional

from repro.dram.commands import Activate, Command


@dataclass(frozen=True)
class TraceEntry:
    """One issued command with its issue timestamp."""

    time_ns: float
    command: Command


class CommandTrace:
    """Bounded FIFO of issued commands.

    ``capacity=None`` keeps everything (only sane for short programs);
    otherwise the oldest entries are dropped, like a logic analyzer buffer.
    """

    def __init__(self, capacity: Optional[int] = 65536) -> None:
        self._entries: Deque[TraceEntry] = deque(maxlen=capacity)
        self.total_recorded = 0

    def record(self, time_ns: float, command: Command) -> None:
        self._entries.append(TraceEntry(time_ns, command))
        self.total_recorded += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def entries(self) -> List[TraceEntry]:
        return list(self._entries)

    def activations(self, bank: Optional[int] = None) -> List[TraceEntry]:
        """All recorded ACT commands, optionally filtered by bank."""
        return [
            entry for entry in self._entries
            if isinstance(entry.command, Activate)
            and (bank is None or entry.command.bank == bank)
        ]

    def clear(self) -> None:
        self._entries.clear()
        self.total_recorded = 0
