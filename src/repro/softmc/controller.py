"""The SoftMC controller: executes instruction programs against a module.

The controller owns the experiment clock.  Commands are issued at precise
timestamps; the device model raises :class:`~repro.errors.TimingViolation`
or :class:`~repro.errors.ProtocolError` if a program under-waits, exactly
like silicon would misbehave.

:class:`~repro.softmc.program.HammerLoop` steps execute *natively*: the
controller validates the kernel's timing once, then applies the aggregate
disturbance of all iterations through the same fault-model entry point the
per-command path uses.  This mirrors SoftMC's FPGA hardware loops and keeps
multi-million-activation tests O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dram.commands import (
    Activate,
    Nop,
    Precharge,
    Read,
    Refresh,
    Write,
)
from repro.dram.module import DRAMModule
from repro.dram.refresh import RefreshEngine, RetentionGuard
from repro.errors import ConfigError, ProtocolError, TimingViolation
from repro.softmc.program import HammerLoop, Instruction, Loop, Program
from repro.softmc.trace import CommandTrace


@dataclass
class ExecutionResult:
    """What came back from running one program."""

    elapsed_ns: float
    reads: List[Tuple[float, int, int, bytes]] = field(default_factory=list)
    activations_issued: int = 0


class SoftMCController:
    """Executes :class:`~repro.softmc.program.Program` objects on a module."""

    def __init__(self, module: DRAMModule,
                 trace: Optional[CommandTrace] = None,
                 refresh_engine: Optional[RefreshEngine] = None,
                 retention_guard: Optional[RetentionGuard] = None,
                 faults=None) -> None:
        self.module = module
        self.trace = trace
        self.refresh_engine = refresh_engine
        self.retention_guard = retention_guard
        self.faults = faults
        self.now_ns: float = 0.0
        self._programs = 0
        self._fault_reads = 0

    # ------------------------------------------------------------------
    def execute(self, program: Program) -> ExecutionResult:
        """Run a program; returns reads and elapsed wall-clock time."""
        if self.faults is not None:
            self._programs += 1
            if self.faults.roll("softmc.timing", self._programs) is not None:
                raise TimingViolation(
                    f"injected sporadic timing violation before program "
                    f"#{self._programs}", "injected", 0.0, 0.0)
            if self.faults.roll("softmc.protocol", self._programs) is not None:
                raise ProtocolError(
                    f"injected illegal-command fault before program "
                    f"#{self._programs}")
        start = self.now_ns
        result = ExecutionResult(elapsed_ns=0.0)
        for step in program:
            self._execute_step(step, result)
        result.elapsed_ns = self.now_ns - start
        if self.retention_guard is not None:
            self.retention_guard.check(result.elapsed_ns, "program")
        return result

    # ------------------------------------------------------------------
    def _execute_step(self, step, result: ExecutionResult) -> None:
        if isinstance(step, Instruction):
            self._issue(step, result)
        elif isinstance(step, Loop):
            for _ in range(step.count):
                for inner in step.body:
                    self._execute_step(inner, result)
        elif isinstance(step, HammerLoop):
            self._execute_hammer_loop(step, result)
        else:
            raise ConfigError(f"unknown program step: {step!r}")

    def _issue(self, instruction: Instruction, result: ExecutionResult) -> None:
        command = instruction.command
        module, now = self.module, self.now_ns
        if self.trace is not None:
            self.trace.record(now, command)
        if isinstance(command, Activate):
            module.activate(command.bank, command.row, now)
            result.activations_issued += 1
        elif isinstance(command, Precharge):
            module.precharge(command.bank, now)
        elif isinstance(command, Read):
            data = module.read(command.bank, command.col, now)
            if self.faults is not None:
                self._fault_reads += 1
                if data and self.faults.roll("softmc.readback",
                                             self._fault_reads) is not None:
                    # Bus corruption: the burst arrives with its first byte
                    # inverted.  The device contents stay intact, so a
                    # retried read-back returns clean data.
                    data = bytes([data[0] ^ 0xFF]) + data[1:]
            result.reads.append((now, command.bank, command.col, data))
        elif isinstance(command, Write):
            module.write(command.bank, command.col, command.data, now)
        elif isinstance(command, Refresh):
            if self.refresh_engine is not None:
                self.refresh_engine.on_ref()
            self.now_ns += module.timing.tRFC
        elif isinstance(command, Nop):
            self.now_ns += command.cycles * module.timing.clock_ns
        else:  # pragma: no cover - exhaustive over the command union
            raise ConfigError(f"unknown command: {command!r}")
        self.now_ns += self.module.timing.quantize(instruction.gap_ns)

    # ------------------------------------------------------------------
    def _execute_hammer_loop(self, loop: HammerLoop,
                             result: ExecutionResult) -> None:
        module, timing = self.module, self.module.timing
        t_on = timing.quantize(loop.t_on_ns)
        t_off = timing.quantize(loop.t_off_ns)
        if t_on + 1e-9 < timing.tRAS:
            raise TimingViolation(
                f"hammer loop t_on {t_on} ns below tRAS {timing.tRAS} ns",
                "tRAS", timing.tRAS, t_on)
        if t_off + 1e-9 < timing.tRP:
            raise TimingViolation(
                f"hammer loop t_off {t_off} ns below tRP {timing.tRP} ns",
                "tRP", timing.tRP, t_off)
        if loop.reads_per_activation:
            reads_window = (timing.tRCD
                            + loop.reads_per_activation * timing.tCCD
                            + timing.burst_ns)
            if reads_window > t_on + 1e-9:
                raise TimingViolation(
                    f"{loop.reads_per_activation} reads need "
                    f"{reads_window:.1f} ns but t_on is {t_on:.1f} ns",
                    "tAggOn", reads_window, t_on)
        bank_state = module.bank(loop.bank)
        if bank_state.open_row is not None:
            raise ProtocolError(
                f"hammer loop on bank {loop.bank} with row "
                f"{bank_state.open_row} open")
        for row in loop.aggressor_rows:
            module.geometry.check_row(row)
        if loop.count == 0:
            return

        # Aggregate disturbance: every activation of every aggressor at the
        # steady-state (t_on, t_off) point, through the same entry point the
        # per-command path uses.
        physical = [module.to_physical(row) for row in loop.aggressor_rows]
        for phys in physical:
            module.fault_model.accrue_activation(loop.bank, phys, t_on, t_off,
                                                 count=loop.count)
        # Each aggressor is itself activated (hence restored) every
        # iteration; at loop end at most a fraction of one iteration's
        # disturbance would remain, which we drop.
        for phys in physical:
            module.fault_model.restore_row(loop.bank, phys)
        if module.trr is not None:
            for phys in physical:
                module.trr.on_activate_bulk(loop.bank, phys, loop.count)

        elapsed = loop.count * len(loop.aggressor_rows) * (t_on + t_off)
        self.now_ns += elapsed
        bank_state.pre_time_ns = self.now_ns
        bank_state.last_gap_ns = t_off
        # Keep the rank-level ACT history coherent: the loop's final
        # activation opened at (end - t_on - t_off).
        module._recent_acts = [self.now_ns - t_on - t_off]
        result.activations_issued += loop.count * len(loop.aggressor_rows)
        if self.retention_guard is not None:
            self.retention_guard.check(elapsed, "hammer loop")
