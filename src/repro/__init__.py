"""deeprh — a simulation-based reproduction of *A Deeper Look into
RowHammer's Sensitivities* (Orosa, Yağlıkçı et al., MICRO 2021).

The package builds every layer of the paper's testbed in Python:

* :mod:`repro.dram` — DDR3/DDR4 device models (geometry, timings, banks,
  row mappings, refresh, TRR, on-die ECC) and the Table 4 module catalog;
* :mod:`repro.faultmodel` — the per-cell RowHammer physics, calibrated per
  manufacturer to the paper's published distributions;
* :mod:`repro.softmc` — the FPGA memory-controller substrate (command
  programs with hardware loops, precise timings, traces);
* :mod:`repro.thermal` — heater pads, thermocouple and PID chamber;
* :mod:`repro.testing` — the characterization methodology (double-sided
  hammering, BER, HCfirst binary search, WCDP, mapping recovery);
* :mod:`repro.analysis` — the statistics behind every figure;
* :mod:`repro.core` — the three study campaigns, the 16 observation
  checkers and the table/figure renderers;
* :mod:`repro.attacks` / :mod:`repro.defenses` — Section 8's three attack
  and six defense improvements plus PARA/Graphene/BlockHammer/RFM.

Quick start::

    from repro import spec_by_id, HammerTester, pattern_by_name

    module = spec_by_id("A0").instantiate()
    tester = HammerTester(module)
    hcfirst = tester.hcfirst(bank=0, victim_logical=2048,
                             pattern=pattern_by_name("rowstripe"),
                             temperature_c=75.0)
"""

from repro.rng import DEFAULT_SEED, SeedSequenceTree, derive
from repro.errors import (
    ConfigError,
    GeometryError,
    MappingError,
    ProtocolError,
    ReproError,
    ThermalError,
    TimingViolation,
)
from repro.dram import (
    CATALOG,
    DDR3_1600,
    DDR4_2400,
    DRAMModule,
    Geometry,
    ModuleSpec,
    OnDieECC,
    TargetRowRefresh,
    TimingSet,
    modules_for_manufacturer,
    pattern_by_name,
    spec_by_id,
)
from repro.dram.data import PATTERNS, DataPattern
from repro.faultmodel import PROFILES, MfrProfile, RowHammerFaultModel, profile_for
from repro.softmc import HammerLoop, Program, SoftMCController, SoftMCSession
from repro.thermal import TemperatureController
from repro.testing import (
    HammerTester,
    binary_search_hcfirst,
    find_worst_case_pattern,
    reverse_engineer_mapping,
    standard_row_sample,
)
from repro.core import (
    ActiveTimeStudy,
    SpatialStudy,
    StudyConfig,
    TemperatureStudy,
    check_all_observations,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DEFAULT_SEED",
    "SeedSequenceTree",
    "derive",
    "ReproError",
    "GeometryError",
    "TimingViolation",
    "ProtocolError",
    "ThermalError",
    "ConfigError",
    "MappingError",
    "Geometry",
    "TimingSet",
    "DDR4_2400",
    "DDR3_1600",
    "DRAMModule",
    "ModuleSpec",
    "CATALOG",
    "spec_by_id",
    "modules_for_manufacturer",
    "OnDieECC",
    "TargetRowRefresh",
    "DataPattern",
    "PATTERNS",
    "pattern_by_name",
    "MfrProfile",
    "PROFILES",
    "profile_for",
    "RowHammerFaultModel",
    "Program",
    "HammerLoop",
    "SoftMCController",
    "SoftMCSession",
    "TemperatureController",
    "HammerTester",
    "binary_search_hcfirst",
    "find_worst_case_pattern",
    "standard_row_sample",
    "reverse_engineer_mapping",
    "StudyConfig",
    "TemperatureStudy",
    "ActiveTimeStudy",
    "SpatialStudy",
    "check_all_observations",
]
