"""Least-squares linear regression with R² (Fig. 14).

The paper fits ``min HCfirst = slope * avg HCfirst + intercept`` across a
manufacturer's subarrays and reports the fit and its R² score (Wright
1921), e.g. ``y = 0.42x + 3833, R²: 0.93`` for manufacturer C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class LinearFit:
    """A fitted line and its goodness of fit."""

    slope: float
    intercept: float
    r2: float
    n: int

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept

    def __str__(self) -> str:
        return (f"y = {self.slope:.2f}x + {self.intercept:.0f} "
                f"(R²: {self.r2:.2f}, n={self.n})")


def linear_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit of ``y`` on ``x``."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape or x_arr.ndim != 1:
        raise ConfigError("x and y must be one-dimensional with equal length")
    if x_arr.size < 2:
        raise ConfigError("need at least two points for a linear fit")
    finite = np.isfinite(x_arr) & np.isfinite(y_arr)
    x_arr, y_arr = x_arr[finite], y_arr[finite]
    if x_arr.size < 2:
        raise ConfigError("need at least two finite points for a linear fit")
    slope, intercept = np.polyfit(x_arr, y_arr, deg=1)
    predictions = slope * x_arr + intercept
    residual = float(((y_arr - predictions) ** 2).sum())
    total = float(((y_arr - y_arr.mean()) ** 2).sum())
    r2 = 1.0 - residual / total if total > 0 else 1.0
    return LinearFit(float(slope), float(intercept), float(r2), int(x_arr.size))
