"""Clustering analyses behind Figs. 3 and 13.

* :class:`TemperatureRangeGrid` — cluster vulnerable cells by their observed
  vulnerable temperature range, quantized to the 5 degC sweep grid, and
  report each cluster as a percentage of the vulnerable-cell population
  (Fig. 3), plus the "no gaps / 1 gap" continuity annotations (Table 3).
* :func:`column_vulnerability_buckets` — the 11x11 two-dimensional histogram
  of (relative vulnerability, cross-chip CV) over columns (Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.units import PAPER_TEMP_MAX_C, PAPER_TEMP_MIN_C, PAPER_TEMP_STEP_C


@dataclass(frozen=True)
class CellTemperatureObservations:
    """Per-cell record: the tested temperatures at which the cell flipped."""

    cell_id: Tuple[int, ...]
    flip_temperatures: Tuple[float, ...]


@dataclass
class TemperatureRangeGrid:
    """Vulnerable-cell population clustered by vulnerable temperature range.

    ``grid[(lo, hi)]`` is the fraction of vulnerable cells whose lowest /
    highest flip temperatures are ``lo`` / ``hi`` (both on the tested grid).
    Because the sweep is censored at its edges, the (50, *) and (*, 90)
    clusters include cells whose true range extends further (Fig. 3's
    caption).
    """

    grid: Dict[Tuple[float, float], float]
    no_gap_fraction: float
    one_gap_fraction: float
    n_cells: int

    @classmethod
    def from_observations(
            cls, observations: Iterable[CellTemperatureObservations],
            temperatures: Sequence[float] = None) -> "TemperatureRangeGrid":
        temps = (np.arange(PAPER_TEMP_MIN_C,
                           PAPER_TEMP_MAX_C + PAPER_TEMP_STEP_C / 2,
                           PAPER_TEMP_STEP_C)
                 if temperatures is None else np.asarray(temperatures, float))
        temp_index = {float(t): i for i, t in enumerate(temps)}
        counts: Dict[Tuple[float, float], int] = {}
        gap_histogram = {0: 0, 1: 0}
        n = 0
        for obs in observations:
            flips = sorted(set(obs.flip_temperatures))
            if not flips:
                continue
            for t in flips:
                if float(t) not in temp_index:
                    raise ConfigError(
                        f"flip temperature {t} not on the tested grid")
            n += 1
            lo, hi = float(flips[0]), float(flips[-1])
            counts[(lo, hi)] = counts.get((lo, hi), 0) + 1
            span = temp_index[hi] - temp_index[lo] + 1
            gaps = span - len(flips)
            gap_histogram[gaps] = gap_histogram.get(gaps, 0) + 1
        if n == 0:
            return cls({}, float("nan"), float("nan"), 0)
        grid = {key: count / n for key, count in sorted(counts.items())}
        return cls(
            grid=grid,
            no_gap_fraction=gap_histogram.get(0, 0) / n,
            one_gap_fraction=gap_histogram.get(1, 0) / n,
            n_cells=n,
        )

    # ------------------------------------------------------------------
    def fraction(self, lo: float, hi: float) -> float:
        """Cluster share for the range [lo, hi] (0.0 if empty)."""
        return self.grid.get((float(lo), float(hi)), 0.0)

    @property
    def full_sweep_fraction(self) -> float:
        """Cells vulnerable at every tested temperature (Obsv. 2)."""
        return self.fraction(PAPER_TEMP_MIN_C, PAPER_TEMP_MAX_C)

    @property
    def single_temperature_fraction(self) -> float:
        """Cells that flip at exactly one tested temperature (Obsv. 3)."""
        return sum(share for (lo, hi), share in self.grid.items() if lo == hi)

    @property
    def interior_single_fraction(self) -> float:
        """Single-temperature cells away from the censored sweep edges.

        Cells observed only at 50 degC (or only at 90 degC) may extend
        below (above) the sweep; interior singles are genuinely narrow
        (the paper's "only vulnerable at 70 degC" example).
        """
        return sum(
            share for (lo, hi), share in self.grid.items()
            if lo == hi and PAPER_TEMP_MIN_C < lo < PAPER_TEMP_MAX_C)

    def narrow_fraction(self, max_width_c: float = 5.0) -> float:
        """Cells whose observed range spans at most ``max_width_c``."""
        return sum(share for (lo, hi), share in self.grid.items()
                   if hi - lo <= max_width_c)

    def at_or_above_fraction(self, threshold_c: float) -> float:
        """Cells whose entire range sits at/above ``threshold_c`` (Attack 2)."""
        return sum(share for (lo, _hi), share in self.grid.items()
                   if lo >= threshold_c)


def column_vulnerability_buckets(flip_counts: np.ndarray,
                                 n_buckets: int = 11
                                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fig. 13's 2-D bucketing of columns.

    Args:
        flip_counts: array of shape ``(chips, columns)`` with per-chip
            per-column bit-flip counts.
        n_buckets: buckets per axis (the paper uses 11).

    Returns:
        ``(bucket_matrix, relative_vulnerability, cv)`` where
        ``bucket_matrix[i, j]`` is the *fraction of all columns* in
        relative-vulnerability bucket ``i`` (0 = least vulnerable) and CV
        bucket ``j`` (CV saturated at 1.0 as in the paper), and the two
        vectors hold the per-column metrics.
    """
    counts = np.asarray(flip_counts, dtype=float)
    if counts.ndim != 2:
        raise ConfigError("flip_counts must be (chips, columns)")
    module_ber = counts.sum(axis=0)
    max_ber = module_ber.max() if module_ber.size else 0.0
    relative = module_ber / max_ber if max_ber > 0 else module_ber
    means = counts.mean(axis=0)
    stds = counts.std(axis=0, ddof=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        cv = np.where(means > 0, stds / means, 0.0)
    cv = np.minimum(cv, 1.0)

    matrix = np.zeros((n_buckets, n_buckets))
    edges = np.linspace(0.0, 1.0, n_buckets + 1)
    rel_idx = np.clip(np.digitize(relative, edges) - 1, 0, n_buckets - 1)
    cv_idx = np.clip(np.digitize(cv, edges) - 1, 0, n_buckets - 1)
    for r, c in zip(rel_idx, cv_idx):
        matrix[r, c] += 1
    if relative.size:
        matrix /= relative.size
    return matrix, relative, cv
