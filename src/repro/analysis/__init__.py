"""Statistics used by the paper's analyses.

Coefficient of variation, percentile summaries, box- and letter-value-plot
statistics, Bhattacharyya distance between HCfirst distributions (Fig. 15),
least-squares linear regression with R² (Fig. 14), and the clustering of
cells by vulnerable temperature range (Fig. 3) and of columns by relative
vulnerability (Fig. 13).
"""

from repro.analysis.stats import (
    BoxStats,
    LetterValueStats,
    coefficient_of_variation,
    mean_confidence_interval,
    percentile_markers,
    sorted_change_curve,
    summarize_change,
)
from repro.analysis.distance import (
    bhattacharyya_coefficient,
    bhattacharyya_distance,
    histogram_distribution,
    normalized_bhattacharyya,
    pairwise_bd_norm,
)
from repro.analysis.regression import LinearFit, linear_fit
from repro.analysis.clusters import (
    CellTemperatureObservations,
    TemperatureRangeGrid,
    column_vulnerability_buckets,
)

__all__ = [
    "BoxStats",
    "LetterValueStats",
    "coefficient_of_variation",
    "mean_confidence_interval",
    "percentile_markers",
    "sorted_change_curve",
    "summarize_change",
    "bhattacharyya_coefficient",
    "bhattacharyya_distance",
    "histogram_distribution",
    "normalized_bhattacharyya",
    "pairwise_bd_norm",
    "LinearFit",
    "linear_fit",
    "CellTemperatureObservations",
    "TemperatureRangeGrid",
    "column_vulnerability_buckets",
]
