"""Descriptive statistics used throughout the paper's figures.

The paper reports box plots (Figs. 7, 9; Tukey fences at 1.5x IQR),
letter-value plots (Figs. 8, 10; Hofmann et al.), 95% confidence intervals
on means (Fig. 4), coefficients of variation (Obsvs. 9, 11, 14) and
percentile markers over sorted distributions (Figs. 5, 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np
from scipy import stats as sps

from repro.errors import ConfigError


def _as_array(values: Sequence[float]) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ConfigError("expected a one-dimensional sample")
    return array


def coefficient_of_variation(values: Sequence[float]) -> float:
    """CV = standard deviation / mean (paper footnote 7).

    Returns NaN for empty samples and for samples with zero mean.
    """
    array = _as_array(values)
    if array.size == 0:
        return float("nan")
    mean = array.mean()
    if mean == 0:
        return float("nan")
    return float(array.std(ddof=0) / mean)


def mean_confidence_interval(values: Sequence[float],
                             confidence: float = 0.95
                             ) -> Tuple[float, float, float]:
    """Mean and symmetric t-based confidence interval (Fig. 4 error bars).

    Returns ``(mean, low, high)``.  Degenerate samples collapse to the mean.
    """
    array = _as_array(values)
    if array.size == 0:
        return float("nan"), float("nan"), float("nan")
    mean = float(array.mean())
    if array.size < 2:
        return mean, mean, mean
    sem = array.std(ddof=1) / np.sqrt(array.size)
    if sem == 0:
        return mean, mean, mean
    half = float(sem * sps.t.ppf(0.5 + confidence / 2.0, df=array.size - 1))
    return mean, mean - half, mean + half


def percentile_markers(
        values: Sequence[float],
        percentiles: Sequence[float] = (1, 5, 10, 25, 50, 75, 90, 95, 99),
        descending: bool = True) -> Dict[str, float]:
    """Percentile markers over a sorted distribution (Fig. 11's P1..P99).

    With ``descending=True`` (the paper sorts rows from highest to lowest
    HCfirst), ``P5`` is the value 5% of the way through the *descending*
    order, i.e. the 95th classical percentile.
    """
    array = _as_array(values)
    result: Dict[str, float] = {}
    for p in percentiles:
        quantile = 100.0 - p if descending else p
        result[f"P{int(p)}"] = (float(np.percentile(array, quantile))
                                if array.size else float("nan"))
    return result


@dataclass(frozen=True)
class BoxStats:
    """Tukey box-plot statistics (paper footnote 5)."""

    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    n_outliers: int
    n: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "BoxStats":
        array = _as_array(values)
        if array.size == 0:
            nan = float("nan")
            return cls(nan, nan, nan, nan, nan, 0, 0)
        q1, median, q3 = (float(np.percentile(array, p)) for p in (25, 50, 75))
        iqr = q3 - q1
        low_fence, high_fence = q1 - 1.5 * iqr, q3 + 1.5 * iqr
        inside = array[(array >= low_fence) & (array <= high_fence)]
        # Whiskers reach the most extreme points inside the fences but, as
        # in standard box plots, never retreat inside the box itself.
        whisker_low = min(float(inside.min()), q1) if inside.size else q1
        whisker_high = max(float(inside.max()), q3) if inside.size else q3
        return cls(median, q1, q3, whisker_low, whisker_high,
                   int(array.size - inside.size), int(array.size))


@dataclass(frozen=True)
class LetterValueStats:
    """Letter-value ("boxen") statistics (paper footnote 6, Hofmann et al.).

    ``levels`` maps depth labels (``"M"`` median, ``"F"`` fourths/quartiles,
    ``"E"`` eighths/octiles, ...) to ``(low, high)`` value pairs; letter
    values stop where fewer than ``min_tail`` points remain outside, and
    the rest are outliers.
    """

    levels: Dict[str, Tuple[float, float]]
    outliers: Tuple[float, ...]
    n: int

    _LABELS = ("M", "F", "E", "D", "C", "B", "A", "Z", "Y", "X")

    @classmethod
    def from_values(cls, values: Sequence[float],
                    outlier_fraction: float = 0.007) -> "LetterValueStats":
        array = np.sort(_as_array(values))
        n = array.size
        if n == 0:
            return cls({}, (), 0)
        levels: Dict[str, Tuple[float, float]] = {}
        tail = 0.5
        for label in cls._LABELS:
            low = float(np.quantile(array, tail)) if label != "M" else \
                float(np.quantile(array, 0.5))
            high = float(np.quantile(array, 1.0 - tail))
            levels[label] = (low, high)
            tail /= 2.0
            if tail * n < max(1.0, outlier_fraction * n):
                break
        cut = max(outlier_fraction / 2.0, 0.0)
        low_cut = float(np.quantile(array, cut))
        high_cut = float(np.quantile(array, 1.0 - cut))
        outliers = tuple(float(v) for v in array
                         if v < low_cut or v > high_cut)
        return cls(levels, outliers, int(n))

    @property
    def median(self) -> float:
        if "M" not in self.levels:
            return float("nan")
        return self.levels["M"][0]


def summarize_change(baseline: Sequence[float],
                     changed: Sequence[float]) -> Dict[str, float]:
    """Paired percentage-change summary used by several observations."""
    base = _as_array(baseline)
    new = _as_array(changed)
    if base.shape != new.shape:
        raise ConfigError("paired samples must have equal length")
    if base.size == 0:
        return {"mean_change_pct": float("nan"),
                "fraction_positive": float("nan"),
                "cumulative_magnitude": 0.0}
    with np.errstate(divide="ignore", invalid="ignore"):
        change = (new - base) / base * 100.0
    change = change[np.isfinite(change)]
    if change.size == 0:
        return {"mean_change_pct": float("nan"),
                "fraction_positive": float("nan"),
                "cumulative_magnitude": 0.0}
    return {
        "mean_change_pct": float(change.mean()),
        "fraction_positive": float((change > 0).mean()),
        "cumulative_magnitude": float(np.abs(change).sum()),
    }


def sorted_change_curve(baseline: Sequence[float],
                        changed: Sequence[float]) -> np.ndarray:
    """Percentage changes sorted from most positive to most negative (Fig. 5)."""
    base = _as_array(baseline)
    new = _as_array(changed)
    if base.shape != new.shape:
        raise ConfigError("paired samples must have equal length")
    with np.errstate(divide="ignore", invalid="ignore"):
        change = (new - base) / base * 100.0
    change = change[np.isfinite(change)]
    return np.sort(change)[::-1]
