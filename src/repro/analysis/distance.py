"""Bhattacharyya distance between HCfirst distributions (Fig. 15).

The paper compares pairs of subarrays by the Bhattacharyya distance of
their per-row HCfirst distributions, normalized to the self-distance of the
first subarray: ``BD_norm = BD(S_A, S_B) / BD(S_A, S_A)``.  With a smoothed
histogram estimator the self-distance is slightly above the theoretical
zero, making the normalization meaningful exactly as in the paper: values
near 1.0 mean "as similar as the subarray is to itself".
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


def histogram_distribution(values: Sequence[float], bins: np.ndarray,
                           smoothing: float = 0.5) -> np.ndarray:
    """Additively-smoothed, normalized histogram over fixed ``bins`` edges."""
    array = np.asarray(values, dtype=float)
    counts, _ = np.histogram(array, bins=bins)
    smoothed = counts.astype(float) + smoothing
    return smoothed / smoothed.sum()


def bhattacharyya_coefficient(p: np.ndarray, q: np.ndarray) -> float:
    """BC = sum_i sqrt(p_i * q_i), in (0, 1]."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ConfigError("distributions must share support")
    return float(np.sqrt(p * q).sum())


def bhattacharyya_distance(p: np.ndarray, q: np.ndarray) -> float:
    """BD = -ln(BC) (Bhattacharyya 1943)."""
    coefficient = bhattacharyya_coefficient(p, q)
    if coefficient <= 0:
        return float("inf")
    return float(-np.log(coefficient))


def _subsample_distance(values: np.ndarray, bins: np.ndarray,
                        smoothing: float) -> float:
    """Self-distance estimate: BD between the two halves of a sample.

    An empirical distribution compared against itself has BD exactly 0, so
    the paper's ``BD(S_A, S_A)`` denominator is only meaningful as a
    finite-sample similarity floor; split-half estimation provides it.
    """
    if values.size < 4:
        return float("nan")
    p = histogram_distribution(values[0::2], bins, smoothing)
    q = histogram_distribution(values[1::2], bins, smoothing)
    return bhattacharyya_distance(p, q)


def normalized_bhattacharyya(sample_a: Sequence[float],
                             sample_b: Sequence[float],
                             n_bins: int = 16,
                             smoothing: float = 0.5) -> float:
    """``BD_norm = BD(S_A, S_B) / BD(S_A, S_A)`` over a shared binning.

    1.0 means the two distributions are as close as subarray A's own
    split-half variability; larger deviations from 1.0 mean more different.
    """
    a = np.sort(np.asarray(sample_a, dtype=float))
    b = np.asarray(sample_b, dtype=float)
    if a.size == 0 or b.size == 0:
        return float("nan")
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    if hi <= lo:
        hi = lo + 1.0
    bins = np.linspace(lo, hi, n_bins + 1)
    cross = bhattacharyya_distance(histogram_distribution(a, bins, smoothing),
                                   histogram_distribution(b, bins, smoothing))
    self_floor = _subsample_distance(a, bins, smoothing)
    if not np.isfinite(self_floor) or self_floor <= 0:
        return float("nan")
    return cross / self_floor


def pairwise_bd_norm(samples: Sequence[Sequence[float]],
                     n_bins: int = 16) -> Tuple[np.ndarray, np.ndarray]:
    """All ordered-pair BD_norm values among ``samples``.

    Returns ``(pair_indices, values)`` where ``pair_indices`` has shape
    ``(n_pairs, 2)`` for pairs ``(i, j)``, ``i != j``.
    """
    indices = []
    values = []
    for i, sample_a in enumerate(samples):
        for j, sample_b in enumerate(samples):
            if i == j:
                continue
            indices.append((i, j))
            values.append(normalized_bhattacharyya(sample_a, sample_b, n_bins))
    return np.asarray(indices, dtype=int), np.asarray(values, dtype=float)
