"""Section 8.1: the three attack improvements, quantified.

Each improvement consumes characterization data (the paper's premise:
attackers can profile or look up a module's behaviour) and produces an
attack plan whose advantage over the uninformed baseline is measurable on
the simulated module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.dram.data import DataPattern
from repro.dram.module import DRAMModule
from repro.errors import ConfigError
from repro.testing.hammer import BER_HAMMERS, HammerTester
from repro.units import PAPER_TEMP_MIN_C

# ----------------------------------------------------------------------
# Improvement 1: temperature-aware targeting (exploits Obsvs. 1-3)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TemperatureAwarePlan:
    """The attacker's chosen (victim row, temperature) operating point."""

    victim_row: int
    temperature_c: float
    hcfirst: int
    baseline_hcfirst: int
    baseline_row: int

    @property
    def hammer_reduction(self) -> float:
        """Fractional HCfirst reduction vs the uninformed baseline."""
        if self.baseline_hcfirst <= 0:
            return 0.0
        return 1.0 - self.hcfirst / self.baseline_hcfirst


def plan_temperature_aware_attack(module: DRAMModule, bank: int,
                                  candidate_rows: Sequence[int],
                                  temperatures_c: Sequence[float],
                                  pattern: DataPattern,
                                  baseline_temperature_c:
                                  float = PAPER_TEMP_MIN_C,
                                  ) -> TemperatureAwarePlan:
    """Profile candidates across temperatures; pick the softest point.

    The uninformed baseline models an attacker who picks the median-
    vulnerability row at the ambient operating temperature; the informed
    attacker heats/cools to the (row, temperature) pair with the lowest
    HCfirst (Attack Improvement 1).
    """
    if not candidate_rows:
        raise ConfigError("need candidate rows to plan an attack")
    tester = HammerTester(module)
    baseline: List[Tuple[int, int]] = []
    for row in candidate_rows:
        hc = tester.hcfirst(bank, row, pattern,
                            temperature_c=baseline_temperature_c)
        if hc is not None:
            baseline.append((hc, row))
    if not baseline:
        raise ConfigError("no vulnerable candidate rows at the baseline "
                          "temperature")
    baseline.sort()
    base_hc, base_row = baseline[len(baseline) // 2]

    best: Optional[Tuple[int, int, float]] = None
    for temp in temperatures_c:
        for row in candidate_rows:
            hc = tester.hcfirst(bank, row, pattern, temperature_c=temp)
            if hc is not None and (best is None or hc < best[0]):
                best = (hc, row, float(temp))
    if best is None:
        raise ConfigError("no vulnerable (row, temperature) point found")
    return TemperatureAwarePlan(
        victim_row=best[1], temperature_c=best[2], hcfirst=best[0],
        baseline_hcfirst=base_hc, baseline_row=base_row)


# ----------------------------------------------------------------------
# Improvement 2: temperature-triggered attack (exploits Obsv. 3)
# ----------------------------------------------------------------------
@dataclass
class TemperatureTrigger:
    """A RowHammer-based temperature sensor/trigger.

    Built from a victim row containing a cell that only flips within a
    narrow temperature band (exact mode) or at/above a threshold
    temperature (threshold mode).  Hammering the row and checking for a
    flip tells the attacker whether the chip is at (or above) the target
    temperature — the trigger condition of the main attack.
    """

    module: DRAMModule
    bank: int
    victim_row: int
    pattern: DataPattern
    hammer_count: int
    target_temperature_c: float
    mode: str  # "exact" or "at-or-above"

    @classmethod
    def arm(cls, module: DRAMModule, bank: int,
            candidate_rows: Sequence[int], pattern: DataPattern,
            target_temperature_c: float,
            temperatures_c: Sequence[float],
            mode: str = "exact",
            hammer_count: int = BER_HAMMERS) -> "TemperatureTrigger":
        """Find a victim row whose flip behaviour encodes the target temp.

        ``exact`` mode wants a row that flips at the target temperature and
        nowhere else on the tested grid; ``at-or-above`` wants monotone
        onset at the target.
        """
        if mode not in ("exact", "at-or-above"):
            raise ConfigError(f"unknown trigger mode {mode!r}")
        tester = HammerTester(module)
        for row in candidate_rows:
            flips_at = {
                float(t): tester.ber_test(
                    bank, row, pattern, hammer_count,
                    temperature_c=t).count(0) > 0
                for t in temperatures_c
            }
            if not flips_at.get(float(target_temperature_c), False):
                continue
            if mode == "exact":
                others = [v for t, v in flips_at.items()
                          if t != float(target_temperature_c)]
                if not any(others):
                    return cls(module, bank, row, pattern, hammer_count,
                               float(target_temperature_c), mode)
            else:
                below = [v for t, v in flips_at.items()
                         if t < float(target_temperature_c)]
                if not any(below):
                    return cls(module, bank, row, pattern, hammer_count,
                               float(target_temperature_c), mode)
        raise ConfigError(
            f"no candidate row encodes {target_temperature_c} degC in "
            f"{mode} mode; widen the candidate set")

    def fires(self, temperature_c: float) -> bool:
        """Hammer once at the given temperature; True if the trigger flips."""
        tester = HammerTester(self.module)
        result = tester.ber_test(self.bank, self.victim_row, self.pattern,
                                 self.hammer_count,
                                 temperature_c=temperature_c)
        return result.count(0) > 0


# ----------------------------------------------------------------------
# Improvement 3: active-time amplification via column reads (Obsv. 8)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AmplifiedAttackOutcome:
    """Effect of stretching the aggressor on-time with extra reads."""

    reads_per_activation: int
    t_on_ns: float
    nominal_t_on_ns: float
    flips: int
    nominal_flips: int
    hcfirst: Optional[int]
    nominal_hcfirst: Optional[int]

    @property
    def ber_gain(self) -> float:
        if self.nominal_flips == 0:
            return float("inf") if self.flips > 0 else 1.0
        return self.flips / self.nominal_flips

    @property
    def hcfirst_reduction(self) -> float:
        if self.hcfirst is None or self.nominal_hcfirst is None:
            return float("nan")
        return 1.0 - self.hcfirst / self.nominal_hcfirst


class ActiveTimeAmplification:
    """Attack Improvement 3: issue extra READs to keep aggressors open.

    On systems where an attacker cannot change DRAM timings, issuing 10-15
    reads per aggressor activation stretches the row's active time ~5x,
    which Obsv. 8 shows increases BER and lowers HCfirst.
    """

    def __init__(self, module: DRAMModule, bank: int = 0) -> None:
        self.module = module
        self.bank = bank
        self.tester = HammerTester(module)

    def achieved_t_on_ns(self, reads_per_activation: int) -> float:
        """Row active time produced by a given read burst."""
        timing = self.module.timing
        window = (timing.tRCD + reads_per_activation * timing.tCCD
                  + timing.burst_ns)
        return max(timing.tRAS, timing.quantize(window))

    def evaluate(self, victim_row: int, pattern: DataPattern,
                 reads_per_activation: int,
                 hammer_count: int = BER_HAMMERS,
                 temperature_c: float = PAPER_TEMP_MIN_C
                 ) -> AmplifiedAttackOutcome:
        t_on = self.achieved_t_on_ns(reads_per_activation)
        nominal = self.tester.ber_test(self.bank, victim_row, pattern,
                                       hammer_count,
                                       temperature_c=temperature_c)
        amplified = self.tester.ber_test(self.bank, victim_row, pattern,
                                         hammer_count,
                                         temperature_c=temperature_c,
                                         t_on_ns=t_on)
        return AmplifiedAttackOutcome(
            reads_per_activation=reads_per_activation,
            t_on_ns=t_on,
            nominal_t_on_ns=self.module.timing.tRAS,
            flips=amplified.count(0),
            nominal_flips=nominal.count(0),
            hcfirst=self.tester.hcfirst(self.bank, victim_row, pattern,
                                        temperature_c=temperature_c,
                                        t_on_ns=t_on),
            nominal_hcfirst=self.tester.hcfirst(self.bank, victim_row,
                                                pattern,
                                                temperature_c=temperature_c),
        )
