"""Aggressor access patterns (Section 2.3 / Section 9 of the paper).

All helpers work in *physical* row space and return the aggressor rows one
hammer iteration activates.  The characterization uses the double-sided
pattern exclusively; single-sided drives the mapping reverse-engineering,
and many-sided (TRRespass-style) patterns exist to exercise the TRR model
in the defense benches.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigError


def single_sided_aggressors(aggressor_row: int) -> Tuple[int, ...]:
    """One aggressor, hammered alone."""
    return (aggressor_row,)


def double_sided_aggressors(victim_row: int) -> Tuple[int, int]:
    """The two rows physically sandwiching the victim."""
    if victim_row < 1:
        raise ConfigError("double-sided victim needs a row below it")
    return (victim_row - 1, victim_row + 1)


def many_sided_aggressors(victim_row: int, sides: int,
                          spacing: int = 2) -> Tuple[int, ...]:
    """TRRespass-style N-sided pattern around a victim.

    Places ``sides`` aggressors at alternating offsets (-1, +1, -1-spacing,
    +1+spacing, ...) so that the victim keeps its double-sided pair while
    additional decoys dilute an in-DRAM tracker's sampling.
    """
    if sides < 2:
        raise ConfigError("many-sided patterns need at least two aggressors")
    rows: List[int] = []
    offset = 1
    while len(rows) < sides:
        rows.append(victim_row - offset)
        if len(rows) < sides:
            rows.append(victim_row + offset)
        offset += spacing
    if min(rows) < 0:
        raise ConfigError("victim too close to the bank edge for this pattern")
    return tuple(rows)
