"""RowHammer attack models and the paper's three attack improvements.

* :mod:`repro.attacks.access_patterns` — single-, double- and many-sided
  aggressor patterns.
* :mod:`repro.attacks.improvements` — Section 8.1:

  1. temperature-aware victim/row targeting,
  2. a temperature-triggered attack primitive built from cells with
     narrow vulnerable temperature ranges,
  3. aggressor active-time amplification via extra column reads.
"""

from repro.attacks.access_patterns import (
    double_sided_aggressors,
    many_sided_aggressors,
    single_sided_aggressors,
)
from repro.attacks.improvements import (
    ActiveTimeAmplification,
    TemperatureAwarePlan,
    TemperatureTrigger,
    plan_temperature_aware_attack,
)
from repro.attacks.trr_bypass import (
    TRRBypassOutcome,
    bypass_sweep,
    replay_against_trr,
)

__all__ = [
    "single_sided_aggressors",
    "double_sided_aggressors",
    "many_sided_aggressors",
    "plan_temperature_aware_attack",
    "TemperatureAwarePlan",
    "TemperatureTrigger",
    "ActiveTimeAmplification",
    "TRRBypassOutcome",
    "replay_against_trr",
    "bypass_sweep",
]
