"""Many-sided TRR bypass (TRRespass-style), for the defense benches.

The paper notes (Section 2.3) that vendor TRR implementations were shown
ineffective by many-sided access patterns: an in-DRAM sampler with a small
tracking table cannot follow many simultaneous aggressors, so decoy rows
dilute its attention while the victim's double-sided pair keeps hammering.

This module replays both patterns against a module with TRR enabled and
periodic REF opportunities, quantifying the bypass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.attacks.access_patterns import double_sided_aggressors, many_sided_aggressors
from repro.dram.data import DataPattern
from repro.dram.module import DRAMModule
from repro.errors import ConfigError
from repro.softmc.program import HammerLoop, Program
from repro.softmc.controller import SoftMCController


@dataclass(frozen=True)
class TRRBypassOutcome:
    """Result of one attack replay against TRR."""

    pattern_name: str
    sides: int
    victim_flips: int
    trr_refreshes: int
    hammers: int

    @property
    def bypassed(self) -> bool:
        return self.victim_flips > 0


def replay_against_trr(module: DRAMModule, victim_logical: int,
                       pattern: DataPattern, sides: int,
                       total_hammers: int = 300_000,
                       ref_interval_hammers: int = 8_192,
                       bank: int = 0) -> TRRBypassOutcome:
    """Hammer ``victim_logical`` with an N-sided pattern under active TRR.

    The attack is chunked so the device gets a REF (and therefore a TRR
    victim-refresh opportunity) every ``ref_interval_hammers`` iterations,
    modelling a memory controller that keeps refreshing on schedule.
    ``sides == 2`` is the plain double-sided attack TRR is designed for.
    """
    if module.trr is None:
        raise ConfigError("module has no TRR attached; set module.trr")
    if sides < 2:
        raise ConfigError("need at least a double-sided pattern")

    phys_victim = module.to_physical(victim_logical)
    if sides == 2:
        physical_aggressors = double_sided_aggressors(phys_victim)
    else:
        physical_aggressors = many_sided_aggressors(phys_victim, sides)
    aggressors = tuple(module.to_logical(p) for p in physical_aggressors)

    window = range(max(phys_victim - 12, 0),
                   min(phys_victim + 13, module.geometry.rows_per_bank))
    module.install_pattern(bank, [module.to_logical(p) for p in window],
                           pattern, victim_logical)
    module.trr.reset()

    controller = SoftMCController(module)
    timing = module.timing
    remaining = total_hammers
    while remaining > 0:
        chunk = min(ref_interval_hammers, remaining)
        loop = HammerLoop(count=chunk, bank=bank, aggressor_rows=aggressors,
                          t_on_ns=timing.tRAS, t_off_ns=timing.tRP)
        controller.execute(Program([loop]))
        module.trr.on_refresh(module)
        remaining -= chunk

    flips = module.harvest_flips(bank, victim_logical)
    return TRRBypassOutcome(
        pattern_name=f"{sides}-sided",
        sides=sides,
        victim_flips=len(flips),
        trr_refreshes=module.trr.refreshes_issued,
        hammers=total_hammers,
    )


def bypass_sweep(module: DRAMModule, victim_logical: int,
                 pattern: DataPattern,
                 sides_grid=(2, 4, 8, 12),
                 total_hammers: int = 300_000,
                 bank: int = 0) -> List[TRRBypassOutcome]:
    """Replay the attack at several side counts (TRRespass's sweep)."""
    return [
        replay_against_trr(module, victim_logical, pattern, sides,
                           total_hammers=total_hammers, bank=bank)
        for sides in sides_grid
    ]
