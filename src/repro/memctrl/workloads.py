"""Synthetic memory request streams.

Small, deterministic generators covering the locality regimes that make
row-buffer policies interesting: streaming (perfect locality), strided
(page-crossing), Zipf-popular rows (mixed locality, the common server
case), and a row-hog stream that models the long same-row bursts an
active-time cap deliberately breaks up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.rng import SeedSequenceTree


@dataclass(frozen=True)
class Request:
    """One column access: (row, col), arriving ``arrival_ns``."""

    row: int
    col: int
    arrival_ns: float
    is_write: bool = False


def _check(n_requests: int, rows: int, cols: int) -> None:
    if n_requests <= 0:
        raise ConfigError("n_requests must be positive")
    if rows <= 0 or cols <= 0:
        raise ConfigError("rows and cols must be positive")


def sequential_stream(n_requests: int, rows: int = 4096, cols: int = 128,
                      gap_ns: float = 10.0) -> List[Request]:
    """Streaming access: consecutive columns, advancing rows."""
    _check(n_requests, rows, cols)
    requests = []
    for i in range(n_requests):
        requests.append(Request(row=(i // cols) % rows, col=i % cols,
                                arrival_ns=i * gap_ns))
    return requests


def strided_stream(n_requests: int, stride_rows: int = 7, rows: int = 4096,
                   cols: int = 128, gap_ns: float = 10.0) -> List[Request]:
    """Row-crossing strides: near-zero row-buffer locality."""
    _check(n_requests, rows, cols)
    if stride_rows <= 0:
        raise ConfigError("stride_rows must be positive")
    return [
        Request(row=(i * stride_rows) % rows, col=(i * 3) % cols,
                arrival_ns=i * gap_ns)
        for i in range(n_requests)
    ]


def zipf_stream(n_requests: int, rows: int = 4096, cols: int = 128,
                alpha: float = 1.2, gap_ns: float = 10.0,
                seed: int = 0) -> List[Request]:
    """Zipf-popular rows: a few hot rows absorb most accesses."""
    _check(n_requests, rows, cols)
    if alpha <= 1.0:
        raise ConfigError("zipf alpha must exceed 1.0")
    gen = SeedSequenceTree(seed, "workload", "zipf").generator(repr(alpha))
    ranks = gen.zipf(alpha, size=n_requests)
    hot_rows = gen.permutation(rows)
    requests = []
    for i, rank in enumerate(ranks):
        row = int(hot_rows[min(int(rank) - 1, rows - 1)])
        requests.append(Request(row=row, col=int(gen.integers(0, cols)),
                                arrival_ns=i * gap_ns))
    return requests


def row_hog_stream(n_requests: int, burst_length: int = 32, rows: int = 4096,
                   cols: int = 128, gap_ns: float = 10.0,
                   seed: int = 0) -> List[Request]:
    """Long same-row bursts: the workload an active-time cap penalizes."""
    _check(n_requests, rows, cols)
    if burst_length <= 0:
        raise ConfigError("burst_length must be positive")
    gen = SeedSequenceTree(seed, "workload", "hog").generator(burst_length)
    requests = []
    row = int(gen.integers(0, rows))
    for i in range(n_requests):
        if i % burst_length == 0:
            row = int(gen.integers(0, rows))
        requests.append(Request(row=row, col=i % cols, arrival_ns=i * gap_ns))
    return requests


def row_hit_potential(requests: List[Request]) -> float:
    """Upper bound on the row-hit rate (back-to-back same-row fraction)."""
    if not requests:
        return 0.0
    hits = sum(1 for a, b in zip(requests, requests[1:]) if a.row == b.row)
    return hits / max(len(requests) - 1, 1)
