"""Memory-controller substrate: row-buffer policies over request streams.

Defense Improvement 5 (Section 8.2) proposes bounding every row's active
time through the memory controller's scheduling / row-buffer policy.  The
security benefit is quantified in :mod:`repro.defenses.scheduling`; this
package supplies the *cost* side: a single-bank request scheduler that
replays synthetic benign workloads under open-page, closed-page and
capped-open-page policies and reports row-hit rates and average latency.
"""

from repro.memctrl.workloads import (
    Request,
    row_hog_stream,
    sequential_stream,
    strided_stream,
    zipf_stream,
)
from repro.memctrl.policies import (
    CappedOpenPagePolicy,
    ClosedPagePolicy,
    OpenPagePolicy,
    RowBufferPolicy,
)
from repro.memctrl.scheduler import BankScheduler, ScheduleStats, compare_policies

__all__ = [
    "Request",
    "sequential_stream",
    "strided_stream",
    "zipf_stream",
    "row_hog_stream",
    "RowBufferPolicy",
    "OpenPagePolicy",
    "ClosedPagePolicy",
    "CappedOpenPagePolicy",
    "BankScheduler",
    "ScheduleStats",
    "compare_policies",
]
