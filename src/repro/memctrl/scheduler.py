"""Single-bank request scheduler.

Replays a request stream through one DRAM bank under a row-buffer policy,
charging JEDEC latencies (tRP for precharge, tRCD for activation, tCCD +
burst for the column access) and reporting row-hit rate, average latency
and the longest row-open interval observed — the quantity Defense
Improvement 5 bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.dram.timing import TimingSet
from repro.errors import ConfigError
from repro.memctrl.policies import RowBufferPolicy
from repro.memctrl.workloads import Request


@dataclass(frozen=True)
class ScheduleStats:
    """Outcome of replaying one stream under one policy."""

    policy: str
    requests: int
    row_hits: int
    total_latency_ns: float
    finish_ns: float
    max_row_open_ns: float
    activations: int

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.row_hits / self.requests

    @property
    def avg_latency_ns(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.total_latency_ns / self.requests


class BankScheduler:
    """In-order, single-bank scheduler with one-request lookahead."""

    def __init__(self, timing: TimingSet, policy: RowBufferPolicy) -> None:
        self.timing = timing
        self.policy = policy

    def run(self, requests: Sequence[Request]) -> ScheduleStats:
        if not requests:
            raise ConfigError("request stream must not be empty")
        timing = self.timing
        open_row = None
        row_opened_at = 0.0
        bank_ready = 0.0            # earliest time the bank accepts a command
        row_hits = 0
        total_latency = 0.0
        max_open = 0.0
        activations = 0
        now = 0.0

        for index, request in enumerate(requests):
            now = max(bank_ready, request.arrival_ns)
            if open_row == request.row:
                row_hits += 1
            else:
                if open_row is not None:
                    # Close the conflicting row (honoring tRAS).
                    close_at = max(now, row_opened_at + timing.tRAS)
                    max_open = max(max_open, close_at - row_opened_at)
                    now = close_at + timing.tRP
                now += timing.tRCD
                open_row = request.row
                row_opened_at = now - timing.tRCD
                activations += 1
            service_done = now + timing.tCCD + timing.burst_ns
            total_latency += service_done - request.arrival_ns
            bank_ready = service_done

            next_same = (index + 1 < len(requests)
                         and requests[index + 1].row == request.row)
            open_time = service_done - row_opened_at
            if self.policy.close_after_access(open_time, next_same):
                close_at = max(service_done, row_opened_at + timing.tRAS)
                max_open = max(max_open, close_at - row_opened_at)
                bank_ready = close_at + timing.tRP
                open_row = None

        if open_row is not None:
            max_open = max(max_open, bank_ready - row_opened_at)
        return ScheduleStats(
            policy=self.policy.name,
            requests=len(requests),
            row_hits=row_hits,
            total_latency_ns=total_latency,
            finish_ns=bank_ready,
            max_row_open_ns=max_open,
            activations=activations,
        )


def compare_policies(timing: TimingSet, policies: Sequence[RowBufferPolicy],
                     requests: Sequence[Request]) -> List[ScheduleStats]:
    """Replay the same stream under several policies."""
    return [BankScheduler(timing, policy).run(requests)
            for policy in policies]
