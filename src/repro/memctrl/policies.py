"""Row-buffer management policies.

The policy decides whether the open row stays open after an access.  The
RowHammer-relevant property is the *maximum row active time* a policy
permits: an attacker can stretch tAggOn only as far as the policy lets any
row stay open (Obsv. 8 / Defense Improvement 5).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigError


class RowBufferPolicy(ABC):
    """Decides, after each access, whether to close the open row."""

    name: str = "policy"

    @abstractmethod
    def close_after_access(self, open_time_ns: float,
                           next_same_row: bool) -> bool:
        """Close now?  ``open_time_ns`` is how long the row has been open;
        ``next_same_row`` is the scheduler's lookahead hint."""

    def max_row_open_ns(self, window_ns: float) -> float:
        """Longest time any row can stay open under this policy."""
        return window_ns


class OpenPagePolicy(RowBufferPolicy):
    """Keep rows open until a conflicting access arrives.

    Maximizes row hits; gives an attacker unbounded active time (up to the
    refresh window).
    """

    name = "open-page"

    def close_after_access(self, open_time_ns: float,
                           next_same_row: bool) -> bool:
        return False


class ClosedPagePolicy(RowBufferPolicy):
    """Precharge immediately after every access.

    The attacker gets exactly one access worth of active time, but every
    benign access pays the full ACT latency.
    """

    name = "closed-page"

    def close_after_access(self, open_time_ns: float,
                           next_same_row: bool) -> bool:
        return True

    def max_row_open_ns(self, window_ns: float) -> float:
        return 0.0  # bounded by a single access window (tRAS floor applies)


class CappedOpenPagePolicy(RowBufferPolicy):
    """Open-page with a hard cap on the row's open time (Improvement 5).

    Rows close once they have been open ``cap_ns``, regardless of pending
    hits — bounding tAggOn for every row in the system while preserving
    most short-burst locality.
    """

    name = "capped-open-page"

    def __init__(self, cap_ns: float) -> None:
        if cap_ns <= 0:
            raise ConfigError("cap must be positive")
        self.cap_ns = cap_ns

    def close_after_access(self, open_time_ns: float,
                           next_same_row: bool) -> bool:
        return open_time_ns >= self.cap_ns

    def max_row_open_ns(self, window_ns: float) -> float:
        return min(self.cap_ns, window_ns)
