"""``[tool.deeprh]`` configuration from ``pyproject.toml``.

The cache knobs — how many oracle threshold matrices the shared cache
holds, how many rows a cell population keeps resident — are operational,
not scientific: every setting yields bit-identical results, only at a
different memory/speed point.  They are therefore configured like other
tooling, in ``pyproject.toml``::

    [tool.deeprh.cache]
    shared_cache_entries = 8192
    row_cache_rows = 2048

CLI flags (``deeprh campaign --shared-cache-entries``, ``deeprh serve
--row-cache-rows``) override the file; unset values fall back to the
library defaults.  :mod:`repro.statcheck` keeps its own
``[tool.deeprh.lint]`` table; this module reads ``cache`` and
``governor``.

The resource governor's budgets live in ``[tool.deeprh.governor]``::

    [tool.deeprh.governor]
    rss_budget_mb = 2048
    shm_budget_mb = 512
    fd_budget = 512
    disk_headroom_mb = 256
    cache_entry_budget = 4096
    assess_every = 8
    recover_after = 3

Budgets are optional — an axis without a budget is never assessed — and,
like the cache knobs, purely operational: any rung of the degradation
ladder yields byte-identical campaign results.
"""

from __future__ import annotations

import pathlib
import tomllib
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """``[tool.deeprh.cache]``: unset fields mean "library default"."""

    shared_cache_entries: Optional[int] = None
    row_cache_rows: Optional[int] = None


def find_pyproject(start: Optional[str] = None) -> Optional[pathlib.Path]:
    """The nearest ``pyproject.toml`` at or above ``start`` (default cwd)."""
    path = pathlib.Path(start) if start is not None else pathlib.Path.cwd()
    if path.is_file():
        path = path.parent
    for directory in (path, *path.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_cache_config(path: Optional[str] = None) -> CacheConfig:
    """Read ``[tool.deeprh.cache]`` from ``path`` or the nearest pyproject.

    A missing file or missing table yields all-default config; a present
    but malformed table is a :class:`ConfigError` — silent fallback would
    hide a typo'd bound until memory ran out mid-campaign.
    """
    pyproject = pathlib.Path(path) if path is not None \
        else find_pyproject()
    if pyproject is None or not pyproject.is_file():
        return CacheConfig()
    try:
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
    except tomllib.TOMLDecodeError as error:
        raise ConfigError(f"cannot parse {pyproject}: {error}") from error
    table = data.get("tool", {}).get("deeprh", {}).get("cache", {})
    if not isinstance(table, dict):
        raise ConfigError(f"[tool.deeprh.cache] in {pyproject} must be "
                          "a table")
    known = {"shared_cache_entries", "row_cache_rows"}
    unknown = set(table) - known
    if unknown:
        raise ConfigError(
            f"unknown [tool.deeprh.cache] key(s) in {pyproject}: "
            f"{', '.join(sorted(unknown))}; expected {sorted(known)}")
    values = {}
    for key in known:
        value = table.get(key)
        if value is None:
            continue
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            raise ConfigError(f"[tool.deeprh.cache] {key} in {pyproject} "
                              "must be a non-negative integer")
        values[key] = value
    return CacheConfig(**values)


def resolve_cache_setting(flag: Optional[int],
                          configured: Optional[int]) -> Optional[int]:
    """CLI flag beats pyproject beats library default (None)."""
    return flag if flag is not None else configured


@dataclass(frozen=True)
class GovernorConfig:
    """``[tool.deeprh.governor]``: unset budgets disable that axis."""

    rss_budget_mb: Optional[int] = None
    shm_budget_mb: Optional[int] = None
    fd_budget: Optional[int] = None
    disk_headroom_mb: Optional[int] = None
    cache_entry_budget: Optional[int] = None
    assess_every: Optional[int] = None
    recover_after: Optional[int] = None

    @property
    def any_budget(self) -> bool:
        """True when at least one budget axis is configured."""
        return any(value is not None for value in (
            self.rss_budget_mb, self.shm_budget_mb, self.fd_budget,
            self.disk_headroom_mb, self.cache_entry_budget))


_GOVERNOR_KEYS = ("rss_budget_mb", "shm_budget_mb", "fd_budget",
                  "disk_headroom_mb", "cache_entry_budget",
                  "assess_every", "recover_after")


def load_governor_config(path: Optional[str] = None) -> GovernorConfig:
    """Read ``[tool.deeprh.governor]`` from ``path`` or nearest pyproject.

    Same contract as :func:`load_cache_config`: missing file/table means
    all-default; a malformed table is a :class:`ConfigError`, because a
    typo'd budget silently ignored *is* the OOM kill the governor exists
    to prevent.
    """
    pyproject = pathlib.Path(path) if path is not None \
        else find_pyproject()
    if pyproject is None or not pyproject.is_file():
        return GovernorConfig()
    try:
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
    except tomllib.TOMLDecodeError as error:
        raise ConfigError(f"cannot parse {pyproject}: {error}") from error
    table = data.get("tool", {}).get("deeprh", {}).get("governor", {})
    if not isinstance(table, dict):
        raise ConfigError(f"[tool.deeprh.governor] in {pyproject} must be "
                          "a table")
    unknown = set(table) - set(_GOVERNOR_KEYS)
    if unknown:
        raise ConfigError(
            f"unknown [tool.deeprh.governor] key(s) in {pyproject}: "
            f"{', '.join(sorted(unknown))}; expected "
            f"{sorted(_GOVERNOR_KEYS)}")
    values = {}
    for key in _GOVERNOR_KEYS:
        value = table.get(key)
        if value is None:
            continue
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 1:
            raise ConfigError(f"[tool.deeprh.governor] {key} in "
                              f"{pyproject} must be a positive integer")
        values[key] = value
    return GovernorConfig(**values)
