"""Study orchestration: the paper's three characterization campaigns.

* :mod:`repro.core.temperature_study` — Section 5 (Figs. 3-5, Table 3)
* :mod:`repro.core.acttime_study` — Section 6 (Figs. 7-10)
* :mod:`repro.core.spatial_study` — Section 7 (Figs. 11-15)

plus the configuration presets, the 16 observation checkers and the
plain-text table/figure renderers used by the benchmark harness.
"""

from repro.core.config import StudyConfig
from repro.core.temperature_study import TemperatureStudy, TemperatureStudyResult
from repro.core.acttime_study import ActiveTimeStudy, ActiveTimeStudyResult
from repro.core.spatial_study import SpatialStudy, SpatialStudyResult
from repro.core.observations import ObservationCheck, check_all_observations
from repro.core.serialize import load_result, result_to_dict, save_result

__all__ = [
    "StudyConfig",
    "TemperatureStudy",
    "TemperatureStudyResult",
    "ActiveTimeStudy",
    "ActiveTimeStudyResult",
    "SpatialStudy",
    "SpatialStudyResult",
    "ObservationCheck",
    "check_all_observations",
    "result_to_dict",
    "save_result",
    "load_result",
]
