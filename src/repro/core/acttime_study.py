"""Section 6: the aggressor-row active-time campaign.

At 50 degC, sweep the aggressor on-time (tAggOn: tRAS -> 154.5 ns) and the
bank precharged time (tAggOff: tRP -> 40.5 ns) over the paper's grids,
measuring per-victim-row BER (150 K hammers) and per-row HCfirst at every
grid point.  Feeds Figs. 7-10 and Obsvs. 8-11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.stats import BoxStats, LetterValueStats, coefficient_of_variation
from repro.core.config import ACTTIME_TEMPERATURE_C, StudyConfig
from repro.core.studybase import ModuleRun, PointwiseStudy
from repro.dram.catalog import MANUFACTURERS, ModuleSpec
from repro.errors import ConfigError
from repro.faultmodel.batch import OraclePoint
from repro.testing.hammer import HammerTester
from repro.testing.patterns import find_worst_case_pattern
from repro.testing.rows import standard_row_sample


@dataclass
class ModuleActTimeResult:
    """Per-module raw measurements of the active-time campaign."""

    module_id: str
    manufacturer: str
    wcdp_name: str
    victim_rows: List[int]
    n_chips: int
    # keyed by ("on"|"off", grid value) ->
    #   per-chip mean flips per victim row, and per-row HCfirst
    chip_ber: Dict[Tuple[str, float], np.ndarray] = field(default_factory=dict)
    row_ber: Dict[Tuple[str, float], np.ndarray] = field(default_factory=dict)
    hcfirst: Dict[Tuple[str, float], np.ndarray] = field(default_factory=dict)


@dataclass
class ActiveTimeStudyResult:
    """All modules plus the Fig. 7-10 / Obsv. 8-11 analyses."""

    config: StudyConfig
    modules: List[ModuleActTimeResult]

    def for_manufacturer(self, mfr: str) -> List[ModuleActTimeResult]:
        found = [m for m in self.modules if m.manufacturer == mfr]
        if not found:
            raise ConfigError(f"no modules for manufacturer {mfr!r} in result")
        return found

    @property
    def manufacturers(self) -> List[str]:
        return [m for m in MANUFACTURERS
                if any(r.manufacturer == m for r in self.modules)]

    def grid(self, axis: str) -> Tuple[float, ...]:
        if axis == "on":
            return self.config.t_agg_on_grid_ns
        if axis == "off":
            return self.config.t_agg_off_grid_ns
        raise ConfigError(f"unknown axis {axis!r} (use 'on' or 'off')")

    # ------------------------------------------------------------------
    # Figs. 7 / 9: per-chip BER distributions as box plots
    # ------------------------------------------------------------------
    def ber_box(self, mfr: str, axis: str, value_ns: float) -> BoxStats:
        pooled = np.concatenate([
            m.chip_ber[(axis, value_ns)] for m in self.for_manufacturer(mfr)])
        return BoxStats.from_values(pooled)

    def ber_mean(self, mfr: str, axis: str, value_ns: float) -> float:
        pooled = np.concatenate([
            m.row_ber[(axis, value_ns)] for m in self.for_manufacturer(mfr)])
        return float(pooled.mean())

    def ber_ratio(self, mfr: str, axis: str) -> float:
        """Mean BER at the grid extreme over the nominal point (Obsv. 8/10)."""
        grid = self.grid(axis)
        base = self.ber_mean(mfr, axis, grid[0])
        extreme = self.ber_mean(mfr, axis, grid[-1])
        if base == 0:
            return float("inf") if extreme > 0 else float("nan")
        return extreme / base

    # ------------------------------------------------------------------
    # Figs. 8 / 10: per-row HCfirst distributions as letter-value plots
    # ------------------------------------------------------------------
    def hcfirst_letter_values(self, mfr: str, axis: str,
                              value_ns: float) -> LetterValueStats:
        pooled = self._pooled_hcfirst(mfr, axis, value_ns)
        return LetterValueStats.from_values(pooled)

    def _pooled_hcfirst(self, mfr: str, axis: str, value_ns: float) -> np.ndarray:
        pooled = np.concatenate([
            m.hcfirst[(axis, value_ns)] for m in self.for_manufacturer(mfr)])
        return pooled[np.isfinite(pooled)]

    def hcfirst_mean_change(self, mfr: str, axis: str) -> float:
        """Mean per-row relative HCfirst change, extreme vs nominal.

        Negative values mean the rows became vulnerable at smaller hammer
        counts (Obsv. 8); positive means hardened (Obsv. 10).
        """
        grid = self.grid(axis)
        changes = []
        for module in self.for_manufacturer(mfr):
            base = module.hcfirst[(axis, grid[0])]
            extreme = module.hcfirst[(axis, grid[-1])]
            mask = np.isfinite(base) & np.isfinite(extreme) & (base > 0)
            changes.append((extreme[mask] - base[mask]) / base[mask])
        pooled = np.concatenate(changes)
        return float(pooled.mean()) if pooled.size else float("nan")

    def cv_trend(self, mfr: str, axis: str, metric: str) -> Tuple[float, float]:
        """CV at the nominal and extreme grid points (Obsvs. 9 and 11)."""
        grid = self.grid(axis)
        if metric == "ber":
            values = [
                coefficient_of_variation(np.concatenate([
                    m.row_ber[(axis, v)] for m in self.for_manufacturer(mfr)]))
                for v in (grid[0], grid[-1])
            ]
        elif metric == "hcfirst":
            values = [
                coefficient_of_variation(self._pooled_hcfirst(mfr, axis, v))
                for v in (grid[0], grid[-1])
            ]
        else:
            raise ConfigError(f"unknown metric {metric!r}")
        return values[0], values[1]


class ActiveTimeStudy(PointwiseStudy):
    """Runs the Section 6 campaign for a configuration.

    Decomposed pointwise (one point per (axis, grid value) timing point)
    so the resilient campaign runner can retry and checkpoint
    mid-campaign; see :mod:`repro.core.studybase`.
    """

    def __init__(self, config: StudyConfig,
                 temperature_c: float = ACTTIME_TEMPERATURE_C) -> None:
        super().__init__(config)
        self.temperature_c = temperature_c

    def points(self) -> List[Tuple[str, float]]:
        points: List[Tuple[str, float]] = []
        for value in self.config.t_agg_on_grid_ns:
            points.append(("on", value))
        for value in self.config.t_agg_off_grid_ns:
            points.append(("off", value))
        return points

    def point_label(self, point: Tuple[str, float]) -> str:
        axis, value = point
        return f"{axis}:{value}"

    def prepare_module(self, spec: ModuleSpec) -> ModuleRun:
        config = self.config
        module = spec.instantiate(seed=config.seed)
        tester = HammerTester(module)
        rows = standard_row_sample(module.geometry,
                                   config.acttime_rows_per_region)
        wcdp, _ = find_worst_case_pattern(
            tester, 0, rows[: config.wcdp_sample_rows],
            hammer_count=config.ber_hammer_count,
            temperature_c=self.temperature_c)

        result = ModuleActTimeResult(
            module_id=spec.module_id,
            manufacturer=spec.manufacturer,
            wcdp_name=wcdp.name,
            victim_rows=list(rows),
            n_chips=module.geometry.chips,
        )
        return ModuleRun(spec=spec, module=module, tester=tester, rows=rows,
                         wcdp=wcdp, result=result)

    def _sweep_points(self) -> List[OraclePoint]:
        """The whole timing grid as oracle points at the study temperature."""
        return [
            OraclePoint(self.temperature_c, value, None) if axis == "on"
            else OraclePoint(self.temperature_c, None, value)
            for axis, value in self.points()
        ]

    def _module_grids(self, run: ModuleRun):
        """Whole-grid BER and HCfirst results, computed once per module.

        The timing grid shares a single temperature, so the batched oracle
        collapses all per-temperature work (threshold matrices, stored-bit
        masks) to one column and sweeps only the cheap kinetics vector.
        """
        grids = run.cache.get("acttime")
        if grids is None:
            sweep = self._sweep_points()
            grids = {
                row: (run.tester.ber_grid(
                          0, row, run.wcdp, sweep,
                          hammer_count=self.config.ber_hammer_count),
                      run.tester.hcfirst_grid(0, row, run.wcdp, sweep))
                for row in run.rows
            }
            run.cache["acttime"] = grids
        return grids

    def run_point(self, run: ModuleRun, point: Tuple[str, float]) -> None:
        axis, value = point
        index = self.points().index(point)
        result = run.result
        rows = run.rows
        grids = self._module_grids(run)
        chip_totals = np.zeros(run.module.geometry.chips)
        row_counts = np.zeros(len(rows))
        hcfirsts = np.full(len(rows), np.inf)
        for i, row in enumerate(rows):
            ber_points, hc_points = grids[row]
            ber = ber_points[index]
            row_counts[i] = ber.count(0)
            for cell in ber.victim_flips:
                chip_totals[cell.chip] += 1
            hc = hc_points[index]
            if hc is not None:
                hcfirsts[i] = hc
        result.chip_ber[(axis, value)] = chip_totals / len(rows)
        result.row_ber[(axis, value)] = row_counts
        result.hcfirst[(axis, value)] = hcfirsts

    def make_result(self, modules: List[ModuleActTimeResult]
                    ) -> ActiveTimeStudyResult:
        return ActiveTimeStudyResult(config=self.config, modules=modules)
