"""Section 7: the spatial-variation campaign.

At 75 degC, measure per-row HCfirst (minimum of five repetitions, Fig. 11),
per-column bit-flip counts per chip (Figs. 12-13) and per-subarray HCfirst
distributions (Figs. 14-15) on every module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.clusters import column_vulnerability_buckets
from repro.analysis.distance import normalized_bhattacharyya
from repro.analysis.regression import LinearFit, linear_fit
from repro.analysis.stats import percentile_markers
from repro.core.config import SPATIAL_TEMPERATURE_C, StudyConfig, subarray_row_sample
from repro.core.studybase import ModuleRun, PointwiseStudy
from repro.dram.catalog import MANUFACTURERS, ModuleSpec
from repro.errors import ConfigError
from repro.faultmodel.batch import OraclePoint
from repro.testing.hammer import HammerTester
from repro.testing.patterns import find_worst_case_pattern
from repro.testing.rows import standard_row_sample


@dataclass
class ModuleSpatialResult:
    """Per-module raw measurements of the spatial campaign."""

    module_id: str
    manufacturer: str
    wcdp_name: str
    victim_rows: List[int]
    hcfirst_by_row: Dict[int, Optional[int]] = field(default_factory=dict)
    column_flip_counts: Optional[np.ndarray] = None   # (chips, cols)
    subarray_hcfirst: Dict[int, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def vulnerable_hcfirst(self) -> np.ndarray:
        values = [v for v in self.hcfirst_by_row.values() if v is not None]
        return np.asarray(sorted(values, reverse=True), dtype=float)

    def percentile_over_min(self, percentile: float) -> float:
        """``P<percentile> / min`` over the sorted-descending rows (Fig. 11)."""
        values = self.vulnerable_hcfirst()
        if values.size == 0:
            return float("nan")
        markers = percentile_markers(values, percentiles=(percentile,))
        return markers[f"P{int(percentile)}"] / values.min()

    def subarray_summary(self) -> List[Tuple[int, float, float]]:
        """(subarray, average HCfirst, min HCfirst) per sampled subarray."""
        summary = []
        for subarray, values in sorted(self.subarray_hcfirst.items()):
            finite = values[np.isfinite(values)]
            if finite.size:
                summary.append((subarray, float(finite.mean()), float(finite.min())))
        return summary


@dataclass
class SpatialStudyResult:
    """All modules plus the Fig. 11-15 analyses."""

    config: StudyConfig
    modules: List[ModuleSpatialResult]

    def for_manufacturer(self, mfr: str) -> List[ModuleSpatialResult]:
        found = [m for m in self.modules if m.manufacturer == mfr]
        if not found:
            raise ConfigError(f"no modules for manufacturer {mfr!r} in result")
        return found

    @property
    def manufacturers(self) -> List[str]:
        return [m for m in MANUFACTURERS
                if any(r.manufacturer == m for r in self.modules)]

    # ------------------------------------------------------------------
    # Fig. 11 / Obsv. 12
    # ------------------------------------------------------------------
    def mean_percentile_over_min(self, percentile: float,
                                 mfrs: Optional[Sequence[str]] = None) -> float:
        """Average P<percentile>/min across modules (the paper's 1.6x/2.0x/2.2x)."""
        mfrs = list(mfrs) if mfrs is not None else self.manufacturers
        ratios = [
            module.percentile_over_min(percentile)
            for mfr in mfrs for module in self.for_manufacturer(mfr)
        ]
        ratios = [r for r in ratios if np.isfinite(r)]
        return float(np.mean(ratios)) if ratios else float("nan")

    # ------------------------------------------------------------------
    # Figs. 12-13 / Obsvs. 13-14
    # ------------------------------------------------------------------
    def column_counts(self, mfr: str) -> np.ndarray:
        """Stacked per-chip column counts for a manufacturer (chips, cols)."""
        return np.vstack([
            m.column_flip_counts for m in self.for_manufacturer(mfr)
            if m.column_flip_counts is not None
        ])

    def zero_flip_column_fraction(self, mfr: str) -> float:
        counts = self.column_counts(mfr)
        return float((counts == 0).mean())

    def min_column_flips(self, mfr: str) -> int:
        """Minimum per-column flips summed per module (Mfr B's 'every column')."""
        minima = []
        for module in self.for_manufacturer(mfr):
            if module.column_flip_counts is not None:
                minima.append(int(module.column_flip_counts.sum(axis=0).min()))
        return min(minima) if minima else 0

    def column_buckets(self, mfr: str, n_buckets: int = 11) -> np.ndarray:
        """Fig. 13's bucket matrix pooled over a manufacturer's modules."""
        matrices = []
        for module in self.for_manufacturer(mfr):
            if module.column_flip_counts is None:
                continue
            matrix, _rel, _cv = column_vulnerability_buckets(
                module.column_flip_counts, n_buckets)
            matrices.append(matrix)
        if not matrices:
            raise ConfigError(f"no column data for manufacturer {mfr!r}")
        return np.mean(matrices, axis=0)

    def design_consistent_fraction(self, mfr: str,
                                   cv_threshold: float = 0.25) -> float:
        """Fraction of flipping columns whose cross-chip CV is small.

        The paper's Obsv. 14 reports columns with CV = 0.0 (the lowest
        bucket); with our smaller row samples Poisson noise floors the CV,
        so the checker uses the lowest buckets below ``cv_threshold``.
        """
        fractions = []
        for module in self.for_manufacturer(mfr):
            if module.column_flip_counts is None:
                continue
            _m, rel, cv = column_vulnerability_buckets(module.column_flip_counts)
            flipping = rel > 0
            if flipping.any():
                fractions.append(float((cv[flipping] <= cv_threshold).mean()))
        return float(np.mean(fractions)) if fractions else float("nan")

    def process_dominated_fraction(self, mfr: str,
                                   cv_threshold: float = 0.95) -> float:
        """Fraction of flipping columns with saturated cross-chip CV."""
        fractions = []
        for module in self.for_manufacturer(mfr):
            if module.column_flip_counts is None:
                continue
            _m, rel, cv = column_vulnerability_buckets(module.column_flip_counts)
            flipping = rel > 0
            if flipping.any():
                fractions.append(float((cv[flipping] >= cv_threshold).mean()))
        return float(np.mean(fractions)) if fractions else float("nan")

    # ------------------------------------------------------------------
    # Fig. 14 / Obsv. 15
    # ------------------------------------------------------------------
    def subarray_points(self, mfr: str) -> Tuple[np.ndarray, np.ndarray]:
        """(avg, min) HCfirst per sampled subarray across the mfr's modules."""
        avgs, mins = [], []
        for module in self.for_manufacturer(mfr):
            for _sa, avg, minimum in module.subarray_summary():
                avgs.append(avg)
                mins.append(minimum)
        return np.asarray(avgs), np.asarray(mins)

    def subarray_fit(self, mfr: str) -> LinearFit:
        avgs, mins = self.subarray_points(mfr)
        return linear_fit(avgs, mins)

    # ------------------------------------------------------------------
    # Fig. 15 / Obsv. 16
    # ------------------------------------------------------------------
    def bd_norm_values(self, mfr: str) -> Tuple[np.ndarray, np.ndarray]:
        """BD_norm populations for (same module, different module) pairs."""
        modules = self.for_manufacturer(mfr)
        same, different = [], []
        samples = [
            (i, values[np.isfinite(values)])
            for i, module in enumerate(modules)
            for values in module.subarray_hcfirst.values()
        ]
        samples = [(i, v) for i, v in samples if v.size >= 8]
        for a_idx, (i, sample_a) in enumerate(samples):
            for b_idx, (j, sample_b) in enumerate(samples):
                if a_idx == b_idx:
                    continue
                value = normalized_bhattacharyya(sample_a, sample_b)
                if not np.isfinite(value):
                    continue
                (same if i == j else different).append(value)
        return np.asarray(same), np.asarray(different)


class SpatialStudy(PointwiseStudy):
    """Runs the Section 7 campaign for a configuration.

    Decomposed pointwise (three phases per module: per-row HCfirst, the
    column campaign, the per-subarray sweep) so the resilient campaign
    runner can retry and checkpoint mid-campaign; see
    :mod:`repro.core.studybase`.
    """

    PHASES: Tuple[str, ...] = ("rows", "columns", "subarrays")

    def __init__(self, config: StudyConfig,
                 temperature_c: float = SPATIAL_TEMPERATURE_C) -> None:
        super().__init__(config)
        self.temperature_c = temperature_c

    def points(self) -> List[str]:
        return list(self.PHASES)

    def prepare_module(self, spec: ModuleSpec) -> ModuleRun:
        config = self.config
        module = spec.instantiate(seed=config.seed)
        tester = HammerTester(module)
        rows = standard_row_sample(module.geometry, config.rows_per_region)
        wcdp, _ = find_worst_case_pattern(
            tester, 0, rows[: config.wcdp_sample_rows],
            hammer_count=config.ber_hammer_count,
            temperature_c=self.temperature_c)

        result = ModuleSpatialResult(
            module_id=spec.module_id,
            manufacturer=spec.manufacturer,
            wcdp_name=wcdp.name,
            victim_rows=list(rows),
        )
        return ModuleRun(spec=spec, module=module, tester=tester, rows=rows,
                         wcdp=wcdp, result=result)

    def run_point(self, run: ModuleRun, point: str) -> None:
        config, tester, result = self.config, run.tester, run.result
        if point == "rows":
            # Fig. 11: per-row HCfirst, minimum across repetitions.  The
            # spatial phases are single points, so the grid calls carry a
            # one-element sweep: they still route through the batched
            # oracle's shared threshold matrices.
            study_point = [OraclePoint(self.temperature_c)]
            for row in run.rows:
                result.hcfirst_by_row[row] = tester.hcfirst_min_grid(
                    0, row, run.wcdp, study_point,
                    repetitions=config.hcfirst_repetitions)[0]
        elif point == "columns":
            # Figs. 12-13: the column campaign.  Per-chip per-column counts
            # need dense statistics (the paper pools 24 K rows), so this
            # campaign samples many rows over a narrower column space and
            # hammers at the extended on-time, which multiplies per-row
            # flips (Obsv. 8).
            result.column_flip_counts = self._column_campaign(run.spec,
                                                              run.wcdp)
        elif point == "subarrays":
            # Figs. 14-15: per-subarray HCfirst distributions.
            sample = subarray_row_sample(
                run.module.geometry, config.subarrays_to_sample,
                config.rows_per_subarray, config.seed)
            study_point = [OraclePoint(self.temperature_c)]
            for subarray, sa_rows in sample.items():
                values = np.full(len(sa_rows), np.inf)
                for i, row in enumerate(sa_rows):
                    hc = tester.hcfirst_grid(0, row, run.wcdp, study_point)[0]
                    if hc is not None:
                        values[i] = hc
                result.subarray_hcfirst[subarray] = values
        else:
            raise ConfigError(f"unknown spatial phase {point!r}")

    def make_result(self, modules: List[ModuleSpatialResult]
                    ) -> SpatialStudyResult:
        return SpatialStudyResult(config=self.config, modules=modules)

    def _column_campaign(self, spec: ModuleSpec, wcdp) -> np.ndarray:
        config = self.config
        geometry = spec.geometry(cols_per_row=config.column_cols)
        module = spec.instantiate(seed=config.seed, geometry=geometry)
        tester = HammerTester(module)
        stride = max(1, (geometry.rows_per_bank - 8) // config.column_rows)
        rows = standard_row_sample(geometry, config.column_rows // 3,
                                   stride=stride // 3 or 1)
        counts = np.zeros((geometry.chips, geometry.cols_per_row))
        study_point = [OraclePoint(self.temperature_c, config.column_t_on_ns,
                                   None)]
        for row in rows:
            ber = tester.ber_grid(0, row, wcdp, study_point,
                                  hammer_count=config.ber_hammer_count)[0]
            for flips in ber.flips_by_distance.values():
                for cell in flips:
                    counts[cell.chip, cell.col] += 1
        module.fault_model.population.clear_cache()
        return counts
