"""Pointwise study skeleton: campaigns as resumable units of work.

The three characterization campaigns (Sections 5-7) all share the same
shape: per module, an expensive *preparation* phase (instantiate the
device, pick the worst-case data pattern), then a sequence of independent
*points* (a temperature, a timing-grid value, a spatial phase), then a
cheap *finalization*.  This module names that shape so the resilient
campaign runner (:mod:`repro.runner`) can retry and checkpoint at the
natural unit-of-work boundaries instead of re-running whole campaigns.

Every ``run_point`` implementation writes its measurements with plain
assignment into the per-module result object, so re-running a point after
a partial failure is idempotent — a retried unit converges to exactly the
values an undisturbed run produces (the device model draws all randomness
structurally from the seed, never from call order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence

from repro.core.config import StudyConfig
from repro.dram.catalog import ModuleSpec

#: A study point is any hashable unit-of-work id: a temperature (float),
#: an (axis, value) timing-grid pair, or a named spatial phase.
PointId = Hashable


@dataclass
class ModuleRun:
    """In-flight per-module state shared by prepare/point/finalize.

    ``cache`` holds batched grid results shared across this module's
    points (the whole sweep is computed on first touch, then each point
    reads its slice).  It never outlives the module: retried points see
    the same deterministic values, and finalization drops it.
    """

    spec: ModuleSpec
    module: Any
    tester: Any
    rows: List[int]
    wcdp: Any
    result: Any
    cache: Dict[str, Any] = field(default_factory=dict)


class PointwiseStudy:
    """Base class: a campaign decomposed into per-module points."""

    def __init__(self, config: StudyConfig) -> None:
        self.config = config

    # -- the pointwise protocol ----------------------------------------
    def points(self) -> Sequence[PointId]:
        """Unit-of-work ids, run in order for every module."""
        raise NotImplementedError

    def point_label(self, point: PointId) -> str:
        """Human/checkpoint label for one point (used in unit ids)."""
        return str(point)

    def prepare_module(self, spec: ModuleSpec) -> ModuleRun:
        """Instantiate the device and the empty per-module result."""
        raise NotImplementedError

    def run_point(self, run: ModuleRun, point: PointId) -> None:
        """Measure one point, writing into ``run.result`` idempotently."""
        raise NotImplementedError

    def finalize_module(self, run: ModuleRun):
        """Release per-module caches and return the finished result."""
        run.cache.clear()
        run.module.fault_model.population.clear_cache()
        return run.result

    def make_result(self, modules: List[Any]):
        """Wrap the per-module results into the study result object."""
        raise NotImplementedError

    # -- the monolithic drivers, built on the protocol -----------------
    def run_module(self, spec: ModuleSpec):
        run = self.prepare_module(spec)
        for point in self.points():
            self.run_point(run, point)
        return self.finalize_module(run)

    def run(self, specs: Optional[Sequence[ModuleSpec]] = None):
        specs = list(specs) if specs is not None else self.config.module_specs()
        return self.make_result([self.run_module(spec) for spec in specs])
