"""Section 5: the temperature characterization campaign.

For every module: select its worst-case data pattern, then at each tested
temperature (50-90 degC, 5 degC steps) run a 150 K-hammer BER test and an
HCfirst binary search on every sampled victim row.  The result object
exposes the analyses behind Fig. 3 (vulnerable temperature ranges),
Table 3 (range continuity), Fig. 4 (BER vs temperature) and Fig. 5
(HCfirst change distributions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analysis.clusters import (
    CellTemperatureObservations,
    TemperatureRangeGrid,
)
from repro.analysis.stats import mean_confidence_interval, sorted_change_curve
from repro.core.config import StudyConfig
from repro.core.studybase import ModuleRun, PointwiseStudy
from repro.dram.catalog import MANUFACTURERS, ModuleSpec
from repro.errors import ConfigError
from repro.faultmodel.batch import temperature_sweep
from repro.testing.hammer import HammerTester
from repro.testing.patterns import find_worst_case_pattern
from repro.testing.rows import standard_row_sample

CellId = Tuple[int, int, int, int]  # (physical row, chip, col, bit)


@dataclass
class ModuleTemperatureResult:
    """Per-module raw measurements of the temperature campaign."""

    module_id: str
    manufacturer: str
    wcdp_name: str
    victim_rows: List[int]
    temperatures_c: List[float]
    # ber_counts[temp][distance] -> per-victim-row flip counts (row order
    # follows victim_rows)
    ber_counts: Dict[float, Dict[int, np.ndarray]] = field(default_factory=dict)
    # victim-row cells that flipped at each temperature
    flip_cells: Dict[float, Set[CellId]] = field(default_factory=dict)
    # hcfirst[temp][victim_row] -> hammer count or None (not vulnerable)
    hcfirst: Dict[float, Dict[int, Optional[int]]] = field(default_factory=dict)

    def cell_observations(self) -> List[CellTemperatureObservations]:
        """Per-cell flip temperature lists (input to the Fig. 3 grid)."""
        by_cell: Dict[CellId, List[float]] = {}
        for temp, cells in self.flip_cells.items():
            for cell in cells:
                by_cell.setdefault(cell, []).append(temp)
        return [
            CellTemperatureObservations(cell_id=cell, flip_temperatures=tuple(temps))
            for cell, temps in by_cell.items()
        ]


@dataclass
class TemperatureStudyResult:
    """All modules' measurements plus the paper's derived analyses."""

    config: StudyConfig
    modules: List[ModuleTemperatureResult]

    # ------------------------------------------------------------------
    def for_manufacturer(self, mfr: str) -> List[ModuleTemperatureResult]:
        found = [m for m in self.modules if m.manufacturer == mfr]
        if not found:
            raise ConfigError(f"no modules for manufacturer {mfr!r} in result")
        return found

    @property
    def manufacturers(self) -> List[str]:
        return [m for m in MANUFACTURERS
                if any(r.manufacturer == m for r in self.modules)]

    # ------------------------------------------------------------------
    # Fig. 3 / Table 3
    # ------------------------------------------------------------------
    def range_grid(self, mfr: str) -> TemperatureRangeGrid:
        observations: List[CellTemperatureObservations] = []
        for module in self.for_manufacturer(mfr):
            observations.extend(module.cell_observations())
        return TemperatureRangeGrid.from_observations(
            observations, temperatures=self.config.temperatures_c)

    def continuity_fraction(self, mfr: str) -> float:
        """Table 3: fraction of vulnerable cells gap-free within their range."""
        return self.range_grid(mfr).no_gap_fraction

    # ------------------------------------------------------------------
    # Fig. 4
    # ------------------------------------------------------------------
    def ber_change_series(self, mfr: str, distance: int = 0
                          ) -> Dict[float, Tuple[float, float, float]]:
        """Per-temperature BER %-change vs the 50 degC mean (mean, CI low/high)."""
        modules = self.for_manufacturer(mfr)
        reference = float(np.concatenate(
            [m.ber_counts[self.reference_temperature][distance]
             for m in modules]).mean())
        if reference == 0 and distance == 0:
            raise ConfigError(
                f"manufacturer {mfr} shows no flips at the reference "
                "temperature; increase the row sample")
        series = {}
        for temp in self.config.temperatures_c:
            if reference == 0:
                # Sparse secondary series (e.g. distance +/-2 on barely
                # vulnerable modules): no meaningful percentage base.
                series[temp] = (float("nan"), float("nan"), float("nan"))
                continue
            pooled = np.concatenate(
                [m.ber_counts[temp][distance] for m in modules])
            changes = (pooled - reference) / reference * 100.0
            series[temp] = mean_confidence_interval(changes)
        return series

    @property
    def reference_temperature(self) -> float:
        return min(self.config.temperatures_c)

    # ------------------------------------------------------------------
    # Fig. 5
    # ------------------------------------------------------------------
    def _paired_hcfirst(self, mfr: str, t_from: float, t_to: float
                        ) -> Tuple[np.ndarray, np.ndarray]:
        base, changed = [], []
        for module in self.for_manufacturer(mfr):
            for row in module.victim_rows:
                a = module.hcfirst[t_from].get(row)
                b = module.hcfirst[t_to].get(row)
                if a is not None and b is not None:
                    base.append(a)
                    changed.append(b)
        return np.asarray(base, float), np.asarray(changed, float)

    def hcfirst_change_curve(self, mfr: str, t_from: float, t_to: float
                             ) -> np.ndarray:
        """Sorted per-row HCfirst %-changes, most positive first (Fig. 5)."""
        base, changed = self._paired_hcfirst(mfr, t_from, t_to)
        return sorted_change_curve(base, changed)

    def hcfirst_positive_fraction(self, mfr: str, t_from: float,
                                  t_to: float) -> float:
        """Fraction of rows whose HCfirst increases from t_from to t_to."""
        curve = self.hcfirst_change_curve(mfr, t_from, t_to)
        if curve.size == 0:
            return float("nan")
        return float((curve > 0).mean())

    def hcfirst_cumulative_magnitude(self, mfr: str, t_from: float,
                                     t_to: float) -> float:
        """Sum of |per-row HCfirst %-change| (Obsv. 7's metric)."""
        curve = self.hcfirst_change_curve(mfr, t_from, t_to)
        return float(np.abs(curve).sum())


class TemperatureStudy(PointwiseStudy):
    """Runs the Section 5 campaign for a configuration.

    Decomposed pointwise (one point per tested temperature) so the
    resilient campaign runner can retry and checkpoint mid-campaign; see
    :mod:`repro.core.studybase`.
    """

    # ------------------------------------------------------------------
    def points(self) -> List[float]:
        return list(self.config.temperatures_c)

    def prepare_module(self, spec: ModuleSpec) -> ModuleRun:
        config = self.config
        module = spec.instantiate(seed=config.seed)
        tester = HammerTester(module)
        rows = standard_row_sample(module.geometry, config.rows_per_region)
        wcdp, _totals = find_worst_case_pattern(
            tester, 0, rows[: config.wcdp_sample_rows],
            hammer_count=config.ber_hammer_count,
            temperature_c=self.reference_temperature)

        result = ModuleTemperatureResult(
            module_id=spec.module_id,
            manufacturer=spec.manufacturer,
            wcdp_name=wcdp.name,
            victim_rows=list(rows),
            temperatures_c=list(config.temperatures_c),
        )
        return ModuleRun(spec=spec, module=module, tester=tester, rows=rows,
                         wcdp=wcdp, result=result)

    def _module_grids(self, run: ModuleRun):
        """Whole-sweep BER and HCfirst grids, computed once per module.

        Per-point work then reduces to slicing, so the per-row cell arrays
        and pattern masks are built once for the entire temperature sweep
        instead of once per tested temperature.
        """
        grids = run.cache.get("temperature")
        if grids is None:
            sweep = temperature_sweep(self.points())
            grids = {
                row: (run.tester.ber_grid(
                          0, row, run.wcdp, sweep,
                          hammer_count=self.config.ber_hammer_count),
                      run.tester.hcfirst_grid(0, row, run.wcdp, sweep))
                for row in run.rows
            }
            run.cache["temperature"] = grids
        return grids

    def run_point(self, run: ModuleRun, point: float) -> None:
        temp = float(point)
        index = self.points().index(temp)
        tester, result = run.tester, run.result
        grids = self._module_grids(run)
        counts: Dict[int, List[int]] = {d: [] for d in tester.observe_distances}
        cells: Set[CellId] = set()
        hcfirsts: Dict[int, Optional[int]] = {}
        for row in run.rows:
            ber_points, hc_points = grids[row]
            ber = ber_points[index]
            for distance in tester.observe_distances:
                counts[distance].append(ber.count(distance))
            for cell in ber.victim_flips:
                cells.add((cell.row, cell.chip, cell.col, cell.bit))
            hcfirsts[row] = hc_points[index]
        result.ber_counts[temp] = {
            d: np.asarray(v, dtype=float) for d, v in counts.items()}
        result.flip_cells[temp] = cells
        result.hcfirst[temp] = hcfirsts

    def make_result(self, modules: List[ModuleTemperatureResult]
                    ) -> TemperatureStudyResult:
        return TemperatureStudyResult(config=self.config, modules=modules)

    @property
    def reference_temperature(self) -> float:
        return min(self.config.temperatures_c)
