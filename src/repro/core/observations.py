"""The paper's 16 observations as executable checks.

Each checker consumes the relevant study result and returns an
:class:`ObservationCheck` with the claim, the measured quantities and a
pass/fail verdict.  Thresholds encode the observation's *shape* (signs,
orderings, rough magnitudes), not the paper's absolute testbed numbers —
see DESIGN.md §6 for the calibration discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.acttime_study import ActiveTimeStudyResult
from repro.core.spatial_study import SpatialStudyResult
from repro.core.temperature_study import TemperatureStudyResult

#: The paper's expected sign of the BER-vs-temperature trend per mfr (Obsv. 4).
BER_TEMPERATURE_TREND = {"A": +1, "B": -1, "C": +1, "D": +1}


@dataclass
class ObservationCheck:
    """One observation's verdict."""

    number: int
    claim: str
    measured: Dict[str, float] = field(default_factory=dict)
    passed: bool = False

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        details = ", ".join(f"{k}={v:.3g}" for k, v in self.measured.items())
        return f"Obsv {self.number:2d} [{status}] {self.claim} ({details})"


# ----------------------------------------------------------------------
# Section 5: temperature (Obsvs. 1-7)
# ----------------------------------------------------------------------
def observation_1(result: TemperatureStudyResult) -> ObservationCheck:
    measured = {f"no_gap_{m}": result.continuity_fraction(m)
                for m in result.manufacturers}
    return ObservationCheck(
        1, "cells flip in a continuous temperature range with very high "
           "probability",
        measured, passed=all(v >= 0.95 for v in measured.values()))


def observation_2(result: TemperatureStudyResult) -> ObservationCheck:
    measured = {f"full_sweep_{m}": result.range_grid(m).full_sweep_fraction
                for m in result.manufacturers}
    return ObservationCheck(
        2, "a significant fraction of vulnerable cells flips at all tested "
           "temperatures",
        measured, passed=all(0.04 <= v <= 0.50 for v in measured.values()))


def observation_3(result: TemperatureStudyResult) -> ObservationCheck:
    measured = {}
    ok = True
    for m in result.manufacturers:
        grid = result.range_grid(m)
        single = grid.interior_single_fraction
        narrow = grid.narrow_fraction(5.0)
        measured[f"single_{m}"] = single
        measured[f"narrow_{m}"] = narrow
        ok = ok and 0.0 < single <= 0.25 and narrow < 0.55
    return ObservationCheck(
        3, "a small fraction of vulnerable cells flips only in a very "
           "narrow temperature range",
        measured, passed=ok)


def observation_4(result: TemperatureStudyResult) -> ObservationCheck:
    measured = {}
    ok = True
    t_hi = max(result.config.temperatures_c)
    for m in result.manufacturers:
        mean_change = result.ber_change_series(m)[t_hi][0]
        measured[f"ber_change_{m}_pct"] = mean_change
        expected = BER_TEMPERATURE_TREND[m]
        ok = ok and (mean_change * expected > 0)
    return ObservationCheck(
        4, "BER increases with temperature for Mfrs. A/C/D and decreases "
           "for Mfr. B",
        measured, passed=ok)


def _fig5_temperatures(result: TemperatureStudyResult):
    temps = sorted(result.config.temperatures_c)
    return temps[0], temps[1], temps[-1]


def observation_5(result: TemperatureStudyResult) -> ObservationCheck:
    t0, _t1, t_hi = _fig5_temperatures(result)
    measured = {}
    ok = True
    for m in result.manufacturers:
        frac = result.hcfirst_positive_fraction(m, t0, t_hi)
        measured[f"positive_{m}"] = frac
        ok = ok and 0.05 < frac < 0.95
    return ObservationCheck(
        5, "rows show both higher and lower HCfirst as temperature increases",
        measured, passed=ok)


def observation_6(result: TemperatureStudyResult) -> ObservationCheck:
    t0, t1, t_hi = _fig5_temperatures(result)
    measured = {}
    votes = []
    for m in result.manufacturers:
        small = result.hcfirst_positive_fraction(m, t0, t1)
        large = result.hcfirst_positive_fraction(m, t0, t_hi)
        measured[f"small_dT_{m}"] = small
        measured[f"large_dT_{m}"] = large
        # Small-sample ties count as non-increasing (the paper's B barely
        # moves: P67 -> P63).
        votes.append(large <= small + 0.03)
    return ObservationCheck(
        6, "fewer rows show higher HCfirst when the temperature delta grows",
        measured, passed=sum(votes) >= max(1, len(votes) - 1))


def observation_7(result: TemperatureStudyResult) -> ObservationCheck:
    t0, t1, t_hi = _fig5_temperatures(result)
    measured = {}
    ok = True
    for m in result.manufacturers:
        small = result.hcfirst_cumulative_magnitude(m, t0, t1)
        large = result.hcfirst_cumulative_magnitude(m, t0, t_hi)
        ratio = large / small if small > 0 else float("inf")
        measured[f"magnitude_ratio_{m}"] = ratio
        ok = ok and ratio > 2.0
    return ObservationCheck(
        7, "the HCfirst change magnitude grows with the temperature delta",
        measured, passed=ok)


# ----------------------------------------------------------------------
# Section 6: aggressor active time (Obsvs. 8-11)
# ----------------------------------------------------------------------
def observation_8(result: ActiveTimeStudyResult) -> ObservationCheck:
    measured = {}
    ok = True
    for m in result.manufacturers:
        ber_ratio = result.ber_ratio(m, "on")
        hc_change = result.hcfirst_mean_change(m, "on")
        measured[f"ber_x_{m}"] = ber_ratio
        measured[f"hc_change_{m}"] = hc_change
        ok = ok and ber_ratio > 2.0 and hc_change < -0.15
    return ObservationCheck(
        8, "longer aggressor on-time: more flips at a given hammer count "
           "and flips at lower hammer counts",
        measured, passed=ok)


def observation_9(result: ActiveTimeStudyResult) -> ObservationCheck:
    measured = {}
    votes = []
    for m in result.manufacturers:
        base_cv, ext_cv = result.cv_trend(m, "on", "hcfirst")
        measured[f"cv_hc_{m}_base"] = base_cv
        measured[f"cv_hc_{m}_ext"] = ext_cv
        votes.append(ext_cv <= base_cv * 1.05)
    return ObservationCheck(
        9, "vulnerability worsens consistently across chips as on-time grows "
           "(HCfirst CV does not grow)",
        measured, passed=sum(votes) >= max(1, len(votes) - 1))


def observation_10(result: ActiveTimeStudyResult) -> ObservationCheck:
    measured = {}
    ok = True
    for m in result.manufacturers:
        ber_ratio = result.ber_ratio(m, "off")       # extreme / base < 1
        hc_change = result.hcfirst_mean_change(m, "off")
        measured[f"ber_x_{m}"] = 1.0 / ber_ratio if ber_ratio > 0 else float("inf")
        measured[f"hc_change_{m}"] = hc_change
        ok = ok and ber_ratio < 0.67 and hc_change > 0.10
    return ObservationCheck(
        10, "longer precharged time: fewer flips and flips at higher hammer "
            "counts",
        measured, passed=ok)


def observation_11(result: ActiveTimeStudyResult) -> ObservationCheck:
    measured = {}
    votes = []
    for m in result.manufacturers:
        base_cv, ext_cv = result.cv_trend(m, "off", "hcfirst")
        measured[f"cv_hc_{m}_base"] = base_cv
        measured[f"cv_hc_{m}_ext"] = ext_cv
        votes.append(ext_cv <= base_cv * 1.10)
    return ObservationCheck(
        11, "vulnerability reduction with off-time is consistent across "
            "rows' most vulnerable cells (HCfirst CV does not grow)",
        measured, passed=sum(votes) >= max(1, len(votes) - 1))


# ----------------------------------------------------------------------
# Section 7: spatial variation (Obsvs. 12-16)
# ----------------------------------------------------------------------
def observation_12(result: SpatialStudyResult) -> ObservationCheck:
    # Percentiles follow Fig. 11's descending sort: "99% of rows exhibit
    # HCfirst >= 1.6x the minimum" is the P99 marker of the descending
    # order (the classical 1st percentile).
    measured = {
        "p99_over_min": result.mean_percentile_over_min(99),
        "p95_over_min": result.mean_percentile_over_min(95),
        "p90_over_min": result.mean_percentile_over_min(90),
    }
    ok = (measured["p99_over_min"] >= 1.1
          and measured["p95_over_min"] >= 1.35
          and measured["p90_over_min"] >= measured["p95_over_min"] * 0.99)
    return ObservationCheck(
        12, "a small fraction of rows is significantly more vulnerable than "
            "the vast majority",
        measured, passed=ok)


def observation_13(result: SpatialStudyResult) -> ObservationCheck:
    measured = {}
    ok = True
    for m in result.manufacturers:
        spreads = []
        for module in result.for_manufacturer(m):
            if module.column_flip_counts is None:
                continue
            per_column = module.column_flip_counts.sum(axis=0)
            spread = float(per_column.max() - per_column.min())
            # Far beyond Poisson noise: the paper's "larger than 100" at
            # its sampling density generalizes to >> sqrt(mean).
            spreads.append(spread > 6 * np.sqrt(max(per_column.mean(), 1.0)))
            measured[f"col_spread_{m}"] = spread
        ok = ok and spreads and all(spreads)
    # At least one manufacturer must show flip-free columns while B's
    # floor keeps every column flipping (the paper's contrast).
    zero_fracs = {m: result.zero_flip_column_fraction(m)
                  for m in result.manufacturers}
    measured.update({f"zero_cols_{m}": v for m, v in zero_fracs.items()})
    others = [v for m, v in zero_fracs.items() if m != "B"]
    if "B" in zero_fracs and others:
        ok = ok and max(others) > zero_fracs["B"]
    return ObservationCheck(
        13, "certain columns are significantly more vulnerable than others",
        measured, passed=ok)


def observation_14(result: SpatialStudyResult) -> ObservationCheck:
    measured = {}
    for m in result.manufacturers:
        measured[f"design_{m}"] = result.design_consistent_fraction(m)
        measured[f"process_{m}"] = result.process_dominated_fraction(m)
    ok = True
    if "A" in result.manufacturers and "B" in result.manufacturers:
        ok = (measured["design_B"] > measured["design_A"]
              and measured["process_A"] > measured["process_B"])
    return ObservationCheck(
        14, "both design (cross-chip-consistent columns) and process "
            "variation (chip-specific columns) shape column vulnerability",
        measured, passed=ok)


def observation_15(result: SpatialStudyResult) -> ObservationCheck:
    measured = {}
    ok = True
    r2_ok = 0
    positive_slopes = 0
    for m in result.manufacturers:
        fit = result.subarray_fit(m)
        avgs, mins = result.subarray_points(m)
        ratio = float(np.mean(avgs / mins)) if mins.size else float("nan")
        measured[f"slope_{m}"] = fit.slope
        measured[f"r2_{m}"] = fit.r2
        measured[f"avg_over_min_{m}"] = ratio
        ok = ok and 1.2 <= ratio <= 5.0
        if fit.r2 >= 0.4:
            r2_ok += 1
        if fit.slope > 0:
            positive_slopes += 1
    # Manufacturer D's nearly-flat module/subarray spread makes its fit
    # noise-dominated (the paper's own D fit has the lowest R2, 0.42).
    n = len(result.manufacturers)
    ok = ok and r2_ok >= min(n, 2) and positive_slopes >= max(1, n - 1)
    return ObservationCheck(
        15, "the most vulnerable row in a subarray is ~2x more vulnerable "
            "than the subarray average, linearly predictable across modules",
        measured, passed=ok)


def observation_16(result: SpatialStudyResult) -> ObservationCheck:
    measured = {}
    votes = []
    for m in result.manufacturers:
        same, different = result.bd_norm_values(m)
        if same.size == 0 or different.size == 0:
            continue
        same_dev = float(np.percentile(np.abs(same - 1.0), 90))
        diff_dev = float(np.percentile(np.abs(different - 1.0), 90))
        measured[f"same_dev_{m}"] = same_dev
        measured[f"diff_dev_{m}"] = diff_dev
        votes.append(same_dev <= diff_dev)
    return ObservationCheck(
        16, "subarray HCfirst distributions are more similar within a "
            "module than across modules",
        measured, passed=bool(votes) and sum(votes) >= max(1, len(votes) - 1))


# ----------------------------------------------------------------------
def check_all_observations(
        temperature: Optional[TemperatureStudyResult] = None,
        acttime: Optional[ActiveTimeStudyResult] = None,
        spatial: Optional[SpatialStudyResult] = None) -> List[ObservationCheck]:
    """Run every checker whose study result was provided."""
    checks: List[ObservationCheck] = []
    if temperature is not None:
        checks.extend(fn(temperature) for fn in (
            observation_1, observation_2, observation_3, observation_4,
            observation_5, observation_6, observation_7))
    if acttime is not None:
        checks.extend(fn(acttime) for fn in (
            observation_8, observation_9, observation_10, observation_11))
    if spatial is not None:
        checks.extend(fn(spatial) for fn in (
            observation_12, observation_13, observation_14, observation_15,
            observation_16))
    return checks
