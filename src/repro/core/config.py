"""Study configuration and scale presets.

The paper tests 8 K rows per bank region on every module at nine
temperatures; a pure-Python reproduction scales the sample sizes down while
keeping every methodological knob (regions, temperature grid, timing grids,
repetition counts, search parameters) identical.  Three presets trade
fidelity for wall-clock time:

* ``quick``   — CI-sized: one module per manufacturer, small row samples.
* ``bench``   — default for the benchmark harness (minutes).
* ``full``    — every cataloged module, large samples (tens of minutes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro import rng as rng_mod
from repro.dram import catalog
from repro.errors import ConfigError
from repro.units import PAPER_TEMPERATURES_C

#: tAggOn grid of Section 6: tRAS (34.5 ns) to 154.5 ns in 30 ns steps.
T_AGG_ON_GRID_NS: Tuple[float, ...] = (34.5, 64.5, 94.5, 124.5, 154.5)

#: tAggOff grid of Section 6: tRP (16.5 ns) to 40.5 ns.
T_AGG_OFF_GRID_NS: Tuple[float, ...] = (16.5, 22.5, 28.5, 34.5, 40.5)

#: Temperature of the active-time experiments (Section 6).
ACTTIME_TEMPERATURE_C = 50.0

#: Temperature of the spatial-variation experiments (Section 7).
SPATIAL_TEMPERATURE_C = 75.0

#: StudyConfig fields that tune *operations* (supervision, pacing), not
#: the science.  They are excluded from checkpoint fingerprints so a
#: campaign resumed with, say, a different worker deadline still merges —
#: the measurements it produces are identical by construction.
OPERATIONAL_FIELDS: Tuple[str, ...] = ("module_deadline_s",)


@dataclass(frozen=True)
class StudyConfig:
    """Scale and methodology parameters for one study run."""

    name: str = "bench"
    seed: int = rng_mod.DEFAULT_SEED
    modules_per_manufacturer: int = 2
    include_ddr3: bool = False
    rows_per_region: int = 120
    acttime_rows_per_region: int = 60
    temperatures_c: Tuple[float, ...] = tuple(float(t) for t in PAPER_TEMPERATURES_C)
    t_agg_on_grid_ns: Tuple[float, ...] = T_AGG_ON_GRID_NS
    t_agg_off_grid_ns: Tuple[float, ...] = T_AGG_OFF_GRID_NS
    ber_hammer_count: int = 150_000
    hcfirst_repetitions: int = 5
    wcdp_sample_rows: int = 8
    subarrays_to_sample: int = 8
    rows_per_subarray: int = 40
    # Column campaign (Figs. 12-13): per-chip per-column counts need dense
    # statistics (the paper pools 24 K rows); we concentrate flips by
    # sampling many rows over a narrower column space at the extended
    # aggressor on-time, which multiplies per-row flips (Obsv. 8).
    column_rows: int = 400
    column_cols: int = 96
    column_t_on_ns: float = 154.5
    # Operational knob (see OPERATIONAL_FIELDS): wall-clock budget one
    # parallel campaign worker gets per module before the supervisor
    # declares it hung, kills its pool and requeues the module.  ``None``
    # disables deadline supervision.  CLI: --module-deadline.
    module_deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.modules_per_manufacturer <= 0:
            raise ConfigError("modules_per_manufacturer must be positive")
        if self.rows_per_region <= 0 or self.acttime_rows_per_region <= 0:
            raise ConfigError("row sample sizes must be positive")
        if len(self.temperatures_c) < 2:
            raise ConfigError("need at least two temperatures")
        if self.ber_hammer_count <= 0:
            raise ConfigError("ber_hammer_count must be positive")
        if self.module_deadline_s is not None and self.module_deadline_s <= 0:
            raise ConfigError("module_deadline_s must be positive (or None)")

    # ------------------------------------------------------------------
    def module_specs(self) -> List[catalog.ModuleSpec]:
        """The modules this configuration characterizes."""
        specs: List[catalog.ModuleSpec] = []
        for mfr in catalog.MANUFACTURERS:
            ddr4 = catalog.modules_for_manufacturer(mfr, "DDR4")
            specs.extend(ddr4[: self.modules_per_manufacturer])
            if self.include_ddr3:
                specs.extend(catalog.modules_for_manufacturer(mfr, "DDR3"))
        return specs

    def scaled(self, **overrides) -> "StudyConfig":
        return replace(self, **overrides)


#: CI-sized preset.  Two modules per manufacturer keep the cross-module
#: analyses (Figs. 14-15 / Obsv. 16) evaluable; the six-point temperature
#: grid keeps observed vulnerable ranges dense enough for Fig. 3's
#: narrow-range statistics.
QUICK = StudyConfig(
    name="quick",
    modules_per_manufacturer=2,
    rows_per_region=30,
    acttime_rows_per_region=20,
    temperatures_c=(50.0, 55.0, 60.0, 70.0, 80.0, 90.0),
    hcfirst_repetitions=2,
    wcdp_sample_rows=4,
    subarrays_to_sample=4,
    rows_per_subarray=14,
    column_rows=240,
)

#: Benchmark-harness preset (the default StudyConfig()).
BENCH = StudyConfig()

#: Large preset: all modules, paper-dense sampling.
FULL = StudyConfig(
    name="full",
    modules_per_manufacturer=9,
    include_ddr3=True,
    rows_per_region=400,
    acttime_rows_per_region=150,
    subarrays_to_sample=16,
    rows_per_subarray=64,
    column_rows=1200,
)

PRESETS: Dict[str, StudyConfig] = {"quick": QUICK, "bench": BENCH, "full": FULL}


def preset(name: str) -> StudyConfig:
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}") from None


def subarray_row_sample(geometry, n_subarrays: int, rows_per_subarray: int,
                        seed: int) -> Dict[int, List[int]]:
    """Victim rows grouped by subarray, spread across the bank (Section 7.3)."""
    total = geometry.subarrays_per_bank
    n_subarrays = min(n_subarrays, total)
    if n_subarrays <= 0:
        raise ConfigError("need at least one subarray")
    gen = rng_mod.derive(seed, "subarray-sample")
    chosen = sorted(gen.choice(total, size=n_subarrays, replace=False).tolist())
    sample: Dict[int, List[int]] = {}
    for subarray in chosen:
        rows = list(geometry.rows_of_subarray(subarray))
        # Keep away from bank edges (double-sided needs both neighbors).
        rows = [r for r in rows if 2 <= r < geometry.rows_per_bank - 2]
        step = max(1, len(rows) // rows_per_subarray)
        sample[subarray] = rows[::step][:rows_per_subarray]
    return sample
