"""Plain-text renderers for the paper's tables and figures.

Every benchmark regenerates its table/figure through these functions so
that running ``pytest benchmarks/ --benchmark-only`` prints the same rows
and series the paper reports.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.stats import percentile_markers
from repro.core.acttime_study import ActiveTimeStudyResult
from repro.core.spatial_study import SpatialStudyResult
from repro.core.temperature_study import TemperatureStudyResult
from repro.dram import catalog
from repro.dram.data import PATTERNS


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: float, digits: int = 2) -> str:
    if value is None or (isinstance(value, float) and not np.isfinite(value)):
        return "-"
    return f"{value:.{digits}f}"


# ----------------------------------------------------------------------
# Tables 1, 2, 4 (static methodology tables)
# ----------------------------------------------------------------------
def table1() -> str:
    rows = []
    for pattern in PATTERNS:
        even = "random" if pattern.is_random else f"0x{pattern.even_byte:02x}"
        odd = "random" if pattern.is_random else f"0x{pattern.odd_byte:02x}"
        rows.append((pattern.name, even, odd))
    return render_table(
        "Table 1: data patterns (victim +/- even rows, +/- odd rows)",
        ("pattern", "V +/- [0,2,4,6,8]", "V +/- [1,3,5,7]"), rows)


def table2() -> str:
    counts = catalog.chip_counts()
    rows = []
    for mfr in catalog.MANUFACTURERS:
        ddr4 = catalog.modules_for_manufacturer(mfr, "DDR4")
        ddr3 = catalog.modules_for_manufacturer(mfr, "DDR3")
        rows.append((f"Mfr. {mfr}", len(ddr4), len(ddr3),
                     counts[mfr]["DDR4"], counts[mfr]["DDR3"]))
    return render_table(
        "Table 2: tested DRAM chips",
        ("mfr", "#DDR4 DIMMs", "#DDR3 SODIMMs", "#DDR4 chips", "#DDR3 chips"),
        rows)


def table4() -> str:
    rows = [
        (s.module_id, s.standard, f"{s.manufacturer}: {s.chip_maker}",
         s.module_vendor, s.freq_mts, s.date_code, f"{s.density_gb}Gb",
         s.die_revision, s.organization, s.n_chips)
        for s in catalog.CATALOG
    ]
    return render_table(
        "Table 4: characteristics of the tested DRAM modules",
        ("id", "type", "chip mfr", "vendor", "MT/s", "date", "density",
         "die", "org", "#chips"), rows)


# ----------------------------------------------------------------------
# Section 5 reports
# ----------------------------------------------------------------------
def table3(result: TemperatureStudyResult) -> str:
    rows = [
        (f"Mfr. {m}", f"{result.continuity_fraction(m) * 100:.1f}%")
        for m in result.manufacturers
    ]
    return render_table(
        "Table 3: vulnerable cells flipping at every temperature point "
        "within their range",
        ("mfr", "no-gap fraction"), rows)


def fig3(result: TemperatureStudyResult, mfr: str) -> str:
    grid = result.range_grid(mfr)
    temps = [float(t) for t in result.config.temperatures_c]
    headers = ["hi\\lo"] + [f"{t:.0f}" for t in temps]
    rows = []
    for hi in temps:
        row = [f"{hi:.0f}"]
        for lo in temps:
            share = grid.fraction(lo, hi)
            row.append(f"{share * 100:.1f}%" if share > 0 else ".")
        rows.append(row)
    footer = (f"no gaps: {grid.no_gap_fraction * 100:.2f}%   "
              f"1 gap: {grid.one_gap_fraction * 100:.2f}%   "
              f"cells: {grid.n_cells}")
    return render_table(
        f"Fig. 3 (Mfr. {mfr}): population of vulnerable cells by vulnerable "
        "temperature range", headers, rows) + "\n" + footer


def fig4(result: TemperatureStudyResult) -> str:
    lines = []
    for mfr in result.manufacturers:
        rows = []
        for distance in (0, -2, 2):
            series = result.ber_change_series(mfr, distance)
            row = [f"distance {distance:+d}"]
            for temp in result.config.temperatures_c:
                mean, low, high = series[temp]
                if np.isfinite(mean):
                    row.append(f"{mean:+.0f}% [{low:+.0f},{high:+.0f}]")
                else:
                    row.append("-")
            rows.append(row)
        headers = ["series"] + [f"{t:.0f}C" for t in result.config.temperatures_c]
        lines.append(render_table(
            f"Fig. 4 (Mfr. {mfr}): BER change vs temperature (vs mean at "
            f"{result.reference_temperature:.0f}C)", headers, rows))
    return "\n\n".join(lines)


def fig5(result: TemperatureStudyResult) -> str:
    temps = sorted(result.config.temperatures_c)
    t0, t1, t_hi = temps[0], temps[1], temps[-1]
    rows = []
    for mfr in result.manufacturers:
        rows.append((
            f"Mfr. {mfr}",
            f"P{result.hcfirst_positive_fraction(mfr, t0, t1) * 100:.0f}",
            f"P{result.hcfirst_positive_fraction(mfr, t0, t_hi) * 100:.0f}",
            _fmt(result.hcfirst_cumulative_magnitude(mfr, t0, t_hi)
                 / max(result.hcfirst_cumulative_magnitude(mfr, t0, t1), 1e-9),
                 1) + "x",
        ))
    return render_table(
        f"Fig. 5: HCfirst change distribution crossings "
        f"({t0:.0f}->{t1:.0f}C and {t0:.0f}->{t_hi:.0f}C)",
        ("mfr", f"+{t1 - t0:.0f}C crossing", f"+{t_hi - t0:.0f}C crossing",
         "cum.magnitude ratio"), rows)


# ----------------------------------------------------------------------
# Section 6 reports
# ----------------------------------------------------------------------
def fig6(timing) -> str:
    """The command-timing schematic of the three test types (text form)."""
    tras, trp = timing.tRAS, timing.tRP
    return "\n".join([
        "Fig. 6: aggressor active-time test timings",
        f"  Baseline:      ACT --[tAggOn = tRAS = {tras:.1f} ns]--> PRE "
        f"--[tAggOff = tRP = {trp:.1f} ns]--> ACT(next)",
        f"  Aggressor On:  ACT --[tAggOn > {tras:.1f} ns]--> PRE "
        f"--[{trp:.1f} ns]--> ACT(next)",
        f"  Aggressor Off: ACT --[{tras:.1f} ns]--> PRE "
        f"--[tAggOff > {trp:.1f} ns]--> ACT(next)",
    ])


def _acttime_figure(result: ActiveTimeStudyResult, axis: str, metric: str,
                    title: str) -> str:
    grid = result.grid(axis)
    lines = []
    for mfr in result.manufacturers:
        rows = []
        for value in grid:
            if metric == "ber":
                box = result.ber_box(mfr, axis, value)
                rows.append((f"{value:.1f} ns", _fmt(box.whisker_low),
                             _fmt(box.q1), _fmt(box.median), _fmt(box.q3),
                             _fmt(box.whisker_high)))
            else:
                lv = result.hcfirst_letter_values(mfr, axis, value)
                fourth = lv.levels.get("F", (float("nan"), float("nan")))
                eighth = lv.levels.get("E", (float("nan"), float("nan")))
                rows.append((f"{value:.1f} ns", _fmt(eighth[0] / 1000, 1),
                             _fmt(fourth[0] / 1000, 1),
                             _fmt(lv.median / 1000, 1),
                             _fmt(fourth[1] / 1000, 1),
                             _fmt(eighth[1] / 1000, 1)))
        headers = (("tAgg" + axis.capitalize(), "lo whisker", "Q1", "median",
                    "Q3", "hi whisker") if metric == "ber" else
                   ("tAgg" + axis.capitalize(), "octile lo (K)", "Q1 (K)",
                    "median (K)", "Q3 (K)", "octile hi (K)"))
        lines.append(render_table(f"{title} (Mfr. {mfr})", headers, rows))
    return "\n\n".join(lines)


def fig7(result: ActiveTimeStudyResult) -> str:
    return _acttime_figure(result, "on", "ber",
                           "Fig. 7: bit flips per victim row vs tAggOn")


def fig8(result: ActiveTimeStudyResult) -> str:
    return _acttime_figure(result, "on", "hcfirst",
                           "Fig. 8: per-row HCfirst vs tAggOn")


def fig9(result: ActiveTimeStudyResult) -> str:
    return _acttime_figure(result, "off", "ber",
                           "Fig. 9: bit flips per victim row vs tAggOff")


def fig10(result: ActiveTimeStudyResult) -> str:
    return _acttime_figure(result, "off", "hcfirst",
                           "Fig. 10: per-row HCfirst vs tAggOff")


# ----------------------------------------------------------------------
# Section 7 reports
# ----------------------------------------------------------------------
def fig11(result: SpatialStudyResult) -> str:
    lines = []
    for mfr in result.manufacturers:
        rows = []
        for module in result.for_manufacturer(mfr):
            values = module.vulnerable_hcfirst()
            if values.size == 0:
                continue
            markers = percentile_markers(values)
            rows.append([module.module_id, f"{values.min() / 1000:.1f}K"]
                        + [f"{markers[f'P{p}'] / 1000:.1f}K"
                           for p in (1, 5, 10, 25, 50, 75, 90, 95, 99)])
        headers = ["module", "min"] + [f"P{p}"
                                       for p in (1, 5, 10, 25, 50, 75, 90, 95, 99)]
        lines.append(render_table(
            f"Fig. 11 (Mfr. {mfr}): HCfirst across rows (sorted descending; "
            "P5 = 5% of rows have higher HCfirst)", headers, rows))
    return "\n\n".join(lines)


def fig12(result: SpatialStudyResult) -> str:
    lines = []
    for mfr in result.manufacturers:
        counts = result.column_counts(mfr)
        per_col = counts.sum(axis=0)
        rows = [(
            f"Mfr. {mfr}",
            int(per_col.max()), f"{(counts == 0).mean() * 100:.1f}%",
            f"{(per_col > per_col.mean() * 4).mean() * 100:.2f}%",
            int(counts.max()),
        )]
        lines.append(render_table(
            f"Fig. 12 (Mfr. {mfr}): bit-flip distribution across columns",
            ("mfr", "max flips/col", "zero chip-cols", "hot cols (>4x mean)",
             "max flips/chip-col"), rows))
    return "\n\n".join(lines)


def fig13(result: SpatialStudyResult, mfr: str) -> str:
    matrix = result.column_buckets(mfr)
    n = matrix.shape[0]
    headers = ["rel.vuln \\ CV"] + [f"{i / (n - 1):.1f}" for i in range(n)]
    rows = []
    for i in range(n - 1, -1, -1):
        row = [f"{i / (n - 1):.1f}"]
        for j in range(n):
            share = matrix[i, j]
            row.append(f"{share * 100:.1f}%" if share > 0 else ".")
        rows.append(row)
    return render_table(
        f"Fig. 13 (Mfr. {mfr}): columns clustered by relative vulnerability "
        "and cross-chip CV", headers, rows)


def fig14(result: SpatialStudyResult) -> str:
    rows = []
    for mfr in result.manufacturers:
        fit = result.subarray_fit(mfr)
        rows.append((f"Mfr. {mfr}", f"y={fit.slope:.2f}x+{fit.intercept:.0f}",
                     _fmt(fit.r2), fit.n))
    return render_table(
        "Fig. 14: min vs avg HCfirst across subarrays (linear fits)",
        ("mfr", "fit", "R^2", "#subarrays"), rows)


def fig15(result: SpatialStudyResult) -> str:
    rows = []
    for mfr in result.manufacturers:
        same, different = result.bd_norm_values(mfr)
        if same.size == 0 or different.size == 0:
            continue
        rows.append((
            f"Mfr. {mfr}",
            f"[{_fmt(np.percentile(same, 5))}, {_fmt(np.percentile(same, 95))}]",
            f"[{_fmt(np.percentile(different, 5))}, "
            f"{_fmt(np.percentile(different, 95))}]",
            len(same), len(different),
        ))
    return render_table(
        "Fig. 15: normalized Bhattacharyya distance between subarray HCfirst "
        "distributions (central P90 band)",
        ("mfr", "same module", "different modules", "#same", "#diff"), rows)
