"""JSON serialization of study results.

Characterization campaigns are expensive; downstream users want to run
once and analyze many times.  These helpers flatten the three study result
objects into plain JSON-compatible dictionaries (and back onto disk).
Loading a whole *study* result returns dictionaries, not result objects —
the serialized form is an interchange format, not a pickle.

Per-*module* results additionally round-trip losslessly
(``*_module_to_dict`` / ``*_module_from_dict``): the resilient campaign
runner checkpoints each completed module to disk and reconstructs the
exact in-memory object on resume, so a resumed campaign is bit-identical
to an uninterrupted one.  Non-finite HCfirst values (``inf`` = row never
flipped) are stored as JSON ``null`` and restored as ``inf``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union

import numpy as np

from repro.core.acttime_study import ActiveTimeStudyResult, ModuleActTimeResult
from repro.core.spatial_study import ModuleSpatialResult, SpatialStudyResult
from repro.core.temperature_study import (
    ModuleTemperatureResult,
    TemperatureStudyResult,
)
from repro.errors import ConfigError

PathLike = Union[str, pathlib.Path]


def _jsonify(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        number = float(value)
        return number if np.isfinite(number) else None
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonify(v) for v in value]
    return value


def _config_dict(config) -> Dict[str, Any]:
    return {
        "name": config.name,
        "seed": config.seed,
        "rows_per_region": config.rows_per_region,
        "temperatures_c": list(config.temperatures_c),
        "ber_hammer_count": config.ber_hammer_count,
    }


def _array_from_json(values, fill: float = np.inf) -> np.ndarray:
    """Rebuild a float array, restoring JSON ``null`` as ``fill``."""
    def restore(value):
        if value is None:
            return fill
        if isinstance(value, list):
            return [restore(v) for v in value]
        return float(value)

    return np.asarray(restore(list(values)), dtype=float)


# ----------------------------------------------------------------------
# Per-module round-trips (the campaign runner's checkpoint format)
# ----------------------------------------------------------------------
def temperature_module_to_dict(m: ModuleTemperatureResult) -> Dict[str, Any]:
    return {
        "module_id": m.module_id,
        "manufacturer": m.manufacturer,
        "wcdp": m.wcdp_name,
        "victim_rows": list(m.victim_rows),
        "temperatures_c": list(m.temperatures_c),
        "ber_counts": _jsonify(m.ber_counts),
        "hcfirst": _jsonify(m.hcfirst),
        "flip_cells": {
            str(temp): sorted(cells)
            for temp, cells in m.flip_cells.items()
        },
    }


def temperature_module_from_dict(data: Dict[str, Any]) -> ModuleTemperatureResult:
    return ModuleTemperatureResult(
        module_id=data["module_id"],
        manufacturer=data["manufacturer"],
        wcdp_name=data["wcdp"],
        victim_rows=[int(r) for r in data["victim_rows"]],
        temperatures_c=[float(t) for t in data["temperatures_c"]],
        ber_counts={
            float(temp): {int(dist): np.asarray(counts, dtype=float)
                          for dist, counts in per_distance.items()}
            for temp, per_distance in data["ber_counts"].items()
        },
        flip_cells={
            float(temp): {tuple(int(part) for part in cell) for cell in cells}
            for temp, cells in data["flip_cells"].items()
        },
        hcfirst={
            float(temp): {int(row): (None if hc is None else int(hc))
                          for row, hc in per_row.items()}
            for temp, per_row in data["hcfirst"].items()
        },
    )


def _grid_key(axis: str, value: float) -> str:
    return f"{axis}:{value}"


def _grid_key_parse(key: str):
    axis, _, value = key.partition(":")
    return axis, float(value)


def acttime_module_to_dict(m: ModuleActTimeResult) -> Dict[str, Any]:
    return {
        "module_id": m.module_id,
        "manufacturer": m.manufacturer,
        "wcdp": m.wcdp_name,
        "victim_rows": list(m.victim_rows),
        "n_chips": m.n_chips,
        "row_ber": {_grid_key(a, v): _jsonify(arr)
                    for (a, v), arr in m.row_ber.items()},
        "chip_ber": {_grid_key(a, v): _jsonify(arr)
                     for (a, v), arr in m.chip_ber.items()},
        "hcfirst": {_grid_key(a, v): _jsonify(arr)
                    for (a, v), arr in m.hcfirst.items()},
    }


def acttime_module_from_dict(data: Dict[str, Any]) -> ModuleActTimeResult:
    return ModuleActTimeResult(
        module_id=data["module_id"],
        manufacturer=data["manufacturer"],
        wcdp_name=data["wcdp"],
        victim_rows=[int(r) for r in data["victim_rows"]],
        n_chips=int(data["n_chips"]),
        chip_ber={_grid_key_parse(k): _array_from_json(v)
                  for k, v in data["chip_ber"].items()},
        row_ber={_grid_key_parse(k): _array_from_json(v)
                 for k, v in data["row_ber"].items()},
        hcfirst={_grid_key_parse(k): _array_from_json(v)
                 for k, v in data["hcfirst"].items()},
    )


def spatial_module_to_dict(m: ModuleSpatialResult) -> Dict[str, Any]:
    return {
        "module_id": m.module_id,
        "manufacturer": m.manufacturer,
        "wcdp": m.wcdp_name,
        "victim_rows": list(m.victim_rows),
        "hcfirst_by_row": _jsonify(m.hcfirst_by_row),
        "column_flip_counts": _jsonify(m.column_flip_counts),
        "subarray_hcfirst": _jsonify(m.subarray_hcfirst),
    }


def spatial_module_from_dict(data: Dict[str, Any]) -> ModuleSpatialResult:
    column_counts = data.get("column_flip_counts")
    return ModuleSpatialResult(
        module_id=data["module_id"],
        manufacturer=data["manufacturer"],
        wcdp_name=data["wcdp"],
        victim_rows=[int(r) for r in data["victim_rows"]],
        hcfirst_by_row={int(row): (None if hc is None else int(hc))
                        for row, hc in data["hcfirst_by_row"].items()},
        column_flip_counts=(None if column_counts is None
                            else _array_from_json(column_counts, fill=0.0)),
        subarray_hcfirst={int(sa): _array_from_json(values)
                          for sa, values in data["subarray_hcfirst"].items()},
    )


# ----------------------------------------------------------------------
# Whole-study serialization
# ----------------------------------------------------------------------
def temperature_result_to_dict(result: TemperatureStudyResult) -> Dict[str, Any]:
    return {
        "study": "temperature",
        "config": _config_dict(result.config),
        "modules": [temperature_module_to_dict(m) for m in result.modules],
    }


def acttime_result_to_dict(result: ActiveTimeStudyResult) -> Dict[str, Any]:
    return {
        "study": "acttime",
        "config": _config_dict(result.config),
        "modules": [acttime_module_to_dict(m) for m in result.modules],
    }


def spatial_result_to_dict(result: SpatialStudyResult) -> Dict[str, Any]:
    return {
        "study": "spatial",
        "config": _config_dict(result.config),
        "modules": [spatial_module_to_dict(m) for m in result.modules],
    }


_SERIALIZERS = {
    TemperatureStudyResult: temperature_result_to_dict,
    ActiveTimeStudyResult: acttime_result_to_dict,
    SpatialStudyResult: spatial_result_to_dict,
}


def result_to_dict(result) -> Dict[str, Any]:
    """Serialize any of the three study results."""
    serializer = _SERIALIZERS.get(type(result))
    if serializer is None:
        raise ConfigError(f"cannot serialize {type(result).__name__}")
    return serializer(result)


def save_result(result, path: PathLike) -> pathlib.Path:
    """Write a study result as JSON; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=1,
                               sort_keys=True))
    return path


def load_result(path: PathLike) -> Dict[str, Any]:
    """Load a serialized study result as plain dictionaries."""
    return json.loads(pathlib.Path(path).read_text())
