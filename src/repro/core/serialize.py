"""JSON serialization of study results.

Characterization campaigns are expensive; downstream users want to run
once and analyze many times.  These helpers flatten the three study result
objects into plain JSON-compatible dictionaries (and back onto disk).
Loading returns dictionaries, not result objects — the serialized form is
an interchange format, not a pickle.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union

import numpy as np

from repro.core.acttime_study import ActiveTimeStudyResult
from repro.core.spatial_study import SpatialStudyResult
from repro.core.temperature_study import TemperatureStudyResult
from repro.errors import ConfigError

PathLike = Union[str, pathlib.Path]


def _jsonify(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        number = float(value)
        return number if np.isfinite(number) else None
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonify(v) for v in value]
    return value


def _config_dict(config) -> Dict[str, Any]:
    return {
        "name": config.name,
        "seed": config.seed,
        "rows_per_region": config.rows_per_region,
        "temperatures_c": list(config.temperatures_c),
        "ber_hammer_count": config.ber_hammer_count,
    }


def temperature_result_to_dict(result: TemperatureStudyResult) -> Dict[str, Any]:
    return {
        "study": "temperature",
        "config": _config_dict(result.config),
        "modules": [
            {
                "module_id": m.module_id,
                "manufacturer": m.manufacturer,
                "wcdp": m.wcdp_name,
                "victim_rows": list(m.victim_rows),
                "ber_counts": _jsonify(m.ber_counts),
                "hcfirst": _jsonify(m.hcfirst),
                "flip_cells": {
                    str(temp): sorted(cells)
                    for temp, cells in m.flip_cells.items()
                },
            }
            for m in result.modules
        ],
    }


def acttime_result_to_dict(result: ActiveTimeStudyResult) -> Dict[str, Any]:
    return {
        "study": "acttime",
        "config": _config_dict(result.config),
        "modules": [
            {
                "module_id": m.module_id,
                "manufacturer": m.manufacturer,
                "wcdp": m.wcdp_name,
                "victim_rows": list(m.victim_rows),
                "row_ber": {f"{a}:{v}": _jsonify(arr)
                            for (a, v), arr in m.row_ber.items()},
                "chip_ber": {f"{a}:{v}": _jsonify(arr)
                             for (a, v), arr in m.chip_ber.items()},
                "hcfirst": {f"{a}:{v}": _jsonify(arr)
                            for (a, v), arr in m.hcfirst.items()},
            }
            for m in result.modules
        ],
    }


def spatial_result_to_dict(result: SpatialStudyResult) -> Dict[str, Any]:
    return {
        "study": "spatial",
        "config": _config_dict(result.config),
        "modules": [
            {
                "module_id": m.module_id,
                "manufacturer": m.manufacturer,
                "wcdp": m.wcdp_name,
                "hcfirst_by_row": _jsonify(m.hcfirst_by_row),
                "column_flip_counts": _jsonify(m.column_flip_counts),
                "subarray_hcfirst": _jsonify(m.subarray_hcfirst),
            }
            for m in result.modules
        ],
    }


_SERIALIZERS = {
    TemperatureStudyResult: temperature_result_to_dict,
    ActiveTimeStudyResult: acttime_result_to_dict,
    SpatialStudyResult: spatial_result_to_dict,
}


def result_to_dict(result) -> Dict[str, Any]:
    """Serialize any of the three study results."""
    serializer = _SERIALIZERS.get(type(result))
    if serializer is None:
        raise ConfigError(f"cannot serialize {type(result).__name__}")
    return serializer(result)


def save_result(result, path: PathLike) -> pathlib.Path:
    """Write a study result as JSON; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=1,
                               sort_keys=True))
    return path


def load_result(path: PathLike) -> Dict[str, Any]:
    """Load a serialized study result as plain dictionaries."""
    return json.loads(pathlib.Path(path).read_text())
