"""The ``deeprh`` command-line interface.

Examples::

    deeprh list-modules
    deeprh run fig5 --preset quick
    deeprh run fig14 --preset bench
    deeprh observations --preset quick
    deeprh campaign temperature --checkpoint-dir ckpt --fault-plan campaign.unit=0.05
    deeprh campaign temperature --checkpoint-dir ckpt --resume
    deeprh campaign temperature --workers 4 --module-deadline 120
    deeprh campaign --verify ckpt
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, Optional

from repro.core import config as config_mod
from repro.core import report
from repro.core.acttime_study import ActiveTimeStudy, ActiveTimeStudyResult
from repro.core.observations import check_all_observations
from repro.core.spatial_study import SpatialStudy, SpatialStudyResult
from repro.core.temperature_study import TemperatureStudy, TemperatureStudyResult
from repro.dram.timing import DDR4_2400
from repro.errors import CampaignParked, ConfigError


class StudyCache:
    """Runs each study at most once per CLI invocation."""

    def __init__(self, config: config_mod.StudyConfig) -> None:
        self.config = config
        self._temperature: Optional[TemperatureStudyResult] = None
        self._acttime: Optional[ActiveTimeStudyResult] = None
        self._spatial: Optional[SpatialStudyResult] = None

    def temperature(self) -> TemperatureStudyResult:
        if self._temperature is None:
            self._temperature = TemperatureStudy(self.config).run()
        return self._temperature

    def acttime(self) -> ActiveTimeStudyResult:
        if self._acttime is None:
            self._acttime = ActiveTimeStudy(self.config).run()
        return self._acttime

    def spatial(self) -> SpatialStudyResult:
        if self._spatial is None:
            self._spatial = SpatialStudy(self.config).run()
        return self._spatial


def _experiment_renderers(cache: StudyCache) -> Dict[str, Callable[[], str]]:
    return {
        "table1": report.table1,
        "table2": report.table2,
        "table3": lambda: report.table3(cache.temperature()),
        "table4": report.table4,
        "fig3": lambda: "\n\n".join(
            report.fig3(cache.temperature(), m)
            for m in cache.temperature().manufacturers),
        "fig4": lambda: report.fig4(cache.temperature()),
        "fig5": lambda: report.fig5(cache.temperature()),
        "fig6": lambda: report.fig6(DDR4_2400),
        "fig7": lambda: report.fig7(cache.acttime()),
        "fig8": lambda: report.fig8(cache.acttime()),
        "fig9": lambda: report.fig9(cache.acttime()),
        "fig10": lambda: report.fig10(cache.acttime()),
        "fig11": lambda: report.fig11(cache.spatial()),
        "fig12": lambda: report.fig12(cache.spatial()),
        "fig13": lambda: "\n\n".join(
            report.fig13(cache.spatial(), m)
            for m in cache.spatial().manufacturers),
        "fig14": lambda: report.fig14(cache.spatial()),
        "fig15": lambda: report.fig15(cache.spatial()),
    }


def _add_governor_args(parser: argparse.ArgumentParser) -> None:
    """Resource-governor flags shared by ``campaign`` and ``serve``.

    Any budget flag implies ``--governor``; budgets left unset fall back
    to ``[tool.deeprh.governor]`` in pyproject.toml.
    """
    parser.add_argument("--governor", action="store_true",
                        help="enable the resource governor: under "
                             "RSS/shm/fd/disk pressure the run degrades "
                             "down a deterministic ladder (shrink caches, "
                             "pickle data plane, serial, shed, park) "
                             "instead of crashing; results stay "
                             "byte-identical at every rung")
    parser.add_argument("--rss-budget-mb", type=int, default=None,
                        metavar="MB",
                        help="process RSS ceiling (implies --governor)")
    parser.add_argument("--shm-budget-mb", type=int, default=None,
                        metavar="MB",
                        help="/dev/shm data-plane ceiling (implies "
                             "--governor)")
    parser.add_argument("--fd-budget", type=int, default=None, metavar="N",
                        help="open file-descriptor ceiling (implies "
                             "--governor)")
    parser.add_argument("--disk-headroom-mb", type=int, default=None,
                        metavar="MB",
                        help="minimum free space on the checkpoint "
                             "volume (implies --governor)")
    parser.add_argument("--cache-entry-budget", type=int, default=None,
                        metavar="N",
                        help="shared oracle-cache occupancy ceiling "
                             "(implies --governor)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="deeprh",
        description="Reproduce 'A Deeper Look into RowHammer's "
                    "Sensitivities' (MICRO 2021) on simulated DRAM.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-modules", help="print the Table 4 module catalog")

    run = sub.add_parser("run", help="regenerate one table or figure")
    run.add_argument("experiment",
                     help="table1|table2|table3|table4|fig3..fig15")
    run.add_argument("--preset", default="quick",
                     choices=sorted(config_mod.PRESETS))
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--save-json", metavar="DIR", default=None,
                     help="also dump the raw study results as JSON files")

    obs = sub.add_parser("observations",
                         help="run all studies and check the 16 observations")
    obs.add_argument("--preset", default="quick",
                     choices=sorted(config_mod.PRESETS))
    obs.add_argument("--seed", type=int, default=None)

    repro = sub.add_parser(
        "reproduce",
        help="run everything: all studies, every table/figure, the "
             "observation scorecard and raw JSON, into one directory")
    repro.add_argument("--outdir", default="reproduction")
    repro.add_argument("--preset", default="quick",
                       choices=sorted(config_mod.PRESETS))
    repro.add_argument("--seed", type=int, default=None)

    campaign = sub.add_parser(
        "campaign",
        help="run one study through the resilient campaign runner "
             "(bounded retry, quarantine, checkpoint/resume, supervised "
             "parallel workers, optional fault injection)")
    campaign.add_argument("study", nargs="?", default=None,
                          choices=("temperature", "acttime", "spatial"))
    campaign.add_argument("--preset", default="quick",
                          choices=sorted(config_mod.PRESETS))
    campaign.add_argument("--seed", type=int, default=None)
    campaign.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                          help="write per-module checkpoints into DIR")
    campaign.add_argument("--resume", action="store_true",
                          help="resume a previous campaign from "
                               "--checkpoint-dir")
    campaign.add_argument("--fault-plan", metavar="SPEC", default=None,
                          help="inject substrate faults, e.g. "
                               "'campaign.unit=0.1,"
                               "thermal.settle:overshoot=0.25'")
    campaign.add_argument("--fault-seed", type=int, default=None,
                          help="seed of the fault plan (default: the "
                               "study seed)")
    campaign.add_argument("--max-attempts", type=int, default=3,
                          help="retry budget per unit of work")
    campaign.add_argument("--workers", type=int, default=1, metavar="N",
                          help="run modules in N supervised worker "
                               "processes; results and checkpoints are "
                               "byte-identical to a serial run (default: 1)")
    campaign.add_argument("--module-deadline", type=float, default=None,
                          metavar="S",
                          help="wall-clock seconds one worker may spend on "
                               "one module before the supervisor declares "
                               "it hung and requeues it (workers > 1; "
                               "default: no deadline)")
    campaign.add_argument("--max-requeues", type=int, default=2, metavar="N",
                          help="extra dispatches a module may consume "
                               "after losing its worker before it is "
                               "quarantined (default: 2)")
    campaign.add_argument("--data-plane", default="auto",
                          choices=("auto", "shm", "pickle"),
                          help="how worker results travel home (workers "
                               "> 1): 'shm' publishes into shared-memory "
                               "segments the parent merges by view, "
                               "'pickle' ships them through the pool "
                               "pipe; results are byte-identical either "
                               "way (default: auto = shm when available)")
    campaign.add_argument("--shared-cache-entries", type=int, default=None,
                          metavar="N",
                          help="bound on the worker-side oracle matrix "
                               "cache (default: [tool.deeprh.cache] in "
                               "pyproject.toml, else 4096)")
    campaign.add_argument("--row-cache-rows", type=int, default=None,
                          metavar="N",
                          help="bound on the per-population row cell "
                               "cache (default: [tool.deeprh.cache] in "
                               "pyproject.toml, else 4096)")
    campaign.add_argument("--verify", metavar="DIR", default=None,
                          help="audit the integrity of a checkpoint "
                               "directory (sha256/length vs journal) and "
                               "exit; no study runs")
    campaign.add_argument("--save-json", metavar="FILE", default=None,
                          help="also dump the merged study result as JSON")
    campaign.add_argument("--trace", metavar="DIR", default=None,
                          help="record a span trace of the campaign into "
                               "DIR/trace.jsonl (off by default; results "
                               "are byte-identical either way)")
    campaign.add_argument("--metrics", action="store_true",
                          help="collect campaign metrics (counters, "
                               "gauges, histograms); printed after the "
                               "run and written to DIR/metrics.json when "
                               "--trace DIR is also given")
    campaign.add_argument("--profile", metavar="N", nargs="?", type=int,
                          const=25, default=None,
                          help="profile the campaign under cProfile and "
                               "print the top N cumulative entries "
                               "(default N: 25)")
    campaign.add_argument("--journal-max-entries", type=int, default=None,
                          metavar="N",
                          help="compact the checkpoint journal once it "
                               "exceeds N lines (default: 512)")
    _add_governor_args(campaign)

    serve = sub.add_parser(
        "serve",
        help="run campaigns as a long-lived service on a Unix socket "
             "(bounded admission, per-request deadlines, circuit-broken "
             "parallelism, graceful drain on SIGTERM)")
    serve.add_argument("--socket", required=True, metavar="PATH",
                       help="Unix domain socket to listen on")
    serve.add_argument("--max-inflight", type=int, default=2, metavar="N",
                       help="campaigns executing concurrently (default: 2)")
    serve.add_argument("--max-queue", type=int, default=8, metavar="N",
                       help="admitted requests waiting beyond the inflight "
                            "bound; the next one is rejected 'overloaded' "
                            "(default: 8)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="retry budget per unit of work (default: 3)")
    serve.add_argument("--fault-plan", metavar="SPEC", default=None,
                       help="service-level fault injection, e.g. "
                            "'serve.request:reject=0.2,"
                            "campaign.worker:crash=0.1'")
    serve.add_argument("--fault-seed", type=int, default=None,
                       help="seed of the service fault plan (default: 0)")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       metavar="N",
                       help="worker-pool losses within the window that "
                            "trip the breaker to serial execution "
                            "(default: 3)")
    serve.add_argument("--breaker-window", type=float, default=60.0,
                       metavar="S",
                       help="sliding loss-counting window in seconds "
                            "(default: 60)")
    serve.add_argument("--breaker-cooldown", type=float, default=120.0,
                       metavar="S",
                       help="seconds the breaker stays open before a "
                            "half-open trial (default: 120)")
    serve.add_argument("--drain-grace", type=float, default=5.0,
                       metavar="S",
                       help="seconds in-flight campaigns get to finish on "
                            "SIGTERM before they are cancelled at the "
                            "next checkpoint boundary (default: 5)")
    serve.add_argument("--resume-manifest", metavar="FILE", default=None,
                       help="where the drain manifest of interrupted "
                            "requests is written (default: "
                            "SOCKET.resume.json)")
    serve.add_argument("--shared-cache-entries", type=int, default=None,
                       metavar="N",
                       help="size of the cross-request oracle matrix "
                            "cache; 0 disables sharing (default: "
                            "[tool.deeprh.cache] in pyproject.toml, "
                            "else 4096)")
    serve.add_argument("--row-cache-rows", type=int, default=None,
                       metavar="N",
                       help="bound on the per-population row cell cache "
                            "(default: [tool.deeprh.cache] in "
                            "pyproject.toml, else 4096)")
    serve.add_argument("--metrics", action="store_true",
                       help="collect service metrics; printed on exit")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="also serve the Prometheus scrape exposition "
                            "over HTTP on 127.0.0.1:PORT (0 picks a free "
                            "port; off by default)")
    serve.add_argument("--trace", metavar="DIR", default=None,
                       help="export request-scoped span traces into "
                            "DIR/trace.jsonl (rotated at a size bound; "
                            "clients opt in per request)")
    _add_governor_args(serve)

    top = sub.add_parser(
        "top",
        help="live terminal view of a running 'deeprh serve' instance")
    top.add_argument("--socket", required=True, metavar="PATH",
                     help="unix socket of the service to watch")
    top.add_argument("--interval", type=float, default=2.0, metavar="S",
                     help="seconds between polls (default: 2.0)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit (no clearing)")

    trace = sub.add_parser(
        "trace",
        help="inspect a trace recorded with 'deeprh campaign --trace'")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    for name, help_text in (
            ("summarize", "per-phase wall-clock totals plus campaign "
                          "health metrics"),
            ("slowest", "the longest individual spans"),
            ("export", "dump the spans as JSON or CSV")):
        trace_cmd = trace_sub.add_parser(name, help=help_text)
        trace_cmd.add_argument("path", metavar="TRACE",
                               help="trace.jsonl file or the directory "
                                    "holding it")
        if name == "summarize":
            trace_cmd.add_argument("--request", metavar="ID", default=None,
                                   help="reconstruct one serve request's "
                                        "span tree (server + worker "
                                        "spans) instead of the phase "
                                        "table")
        if name == "slowest":
            trace_cmd.add_argument("--top", type=int, default=10,
                                   metavar="N",
                                   help="how many spans to show "
                                        "(default: 10)")
        if name == "export":
            trace_cmd.add_argument("--format", dest="output_format",
                                   default="json",
                                   choices=("json", "csv"),
                                   help="output format (default: json)")
            trace_cmd.add_argument("-o", "--output", metavar="FILE",
                                   default=None,
                                   help="write to FILE instead of stdout")

    lint = sub.add_parser(
        "lint",
        help="statically check determinism & unit-discipline invariants "
             "(DRH001-DRH006) over python sources")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to check "
                           "(default: the installed repro package)")
    lint.add_argument("--format", dest="output_format", default="text",
                      choices=("text", "json"),
                      help="report format (default: text)")
    lint.add_argument("--config", metavar="PYPROJECT", default=None,
                      help="pyproject.toml holding [tool.deeprh.lint] "
                           "(default: nearest pyproject.toml above the "
                           "first path)")
    lint.add_argument("--list-rules", action="store_true",
                      help="describe every rule and exit")
    return parser


#: Exit code of a campaign stopped by SIGINT/SIGTERM (128 + SIGINT).
INTERRUPTED_EXIT = 130

#: Exit code of a campaign the resource governor parked (EX_TEMPFAIL:
#: "try again later" — the checkpoints and parked.json are on disk).
PARKED_EXIT = 75


def _build_governor_from_args(args, faults=None):
    """Flags + ``[tool.deeprh.governor]`` -> governor (or ``None``)."""
    from repro.core.toolconfig import load_governor_config
    from repro.runner import build_governor

    return build_governor(
        load_governor_config(),
        enabled=args.governor,
        rss_budget_mb=args.rss_budget_mb,
        shm_budget_mb=args.shm_budget_mb,
        fd_budget=args.fd_budget,
        disk_headroom_mb=args.disk_headroom_mb,
        cache_entry_budget=args.cache_entry_budget,
        faults=faults)


def _install_sigterm_as_interrupt() -> None:
    """Let SIGTERM take the same graceful-checkpoint path as Ctrl-C.

    Only possible on the main thread; elsewhere (embedded use, tests)
    SIGTERM keeps its default disposition and the interrupt handling
    simply never triggers.
    """
    import signal

    def _raise(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise)
    except ValueError:
        pass


def _campaign(args, config: config_mod.StudyConfig) -> int:
    import pathlib

    from repro.faults import parse_fault_plan
    from repro.obs import MetricsRegistry, Tracer, observed
    from repro.obs.trace import METRICS_FILENAME, TRACE_FILENAME
    from repro.runner import (
        CampaignRunner,
        RetryPolicy,
        SupervisorPolicy,
        audit_checkpoint_dir,
    )

    if args.verify is not None:
        audit = audit_checkpoint_dir(args.verify)
        print(audit.render())
        return 0 if audit.ok else 1
    if args.study is None:
        print("error: a study (temperature|acttime|spatial) is required "
              "unless --verify is given", file=sys.stderr)
        return 1
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 1
    fault_plan = None
    if args.fault_plan:
        fault_seed = args.fault_seed if args.fault_seed is not None \
            else config.seed
        fault_plan = parse_fault_plan(args.fault_plan, seed=fault_seed)
    if args.module_deadline is not None:
        config = config.scaled(module_deadline_s=args.module_deadline)
    from repro.core.toolconfig import load_cache_config, resolve_cache_setting

    cache_config = load_cache_config()
    governor = _build_governor_from_args(args, faults=fault_plan)
    tracer = Tracer() if args.trace else None
    metrics = MetricsRegistry() if (args.metrics or args.trace) else None
    _install_sigterm_as_interrupt()
    try:
        with observed(tracer=tracer, metrics=metrics):
            runner = CampaignRunner(
                config,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                fault_plan=fault_plan,
                retry=RetryPolicy(max_attempts=args.max_attempts),
                workers=args.workers,
                supervisor=SupervisorPolicy(
                    module_deadline_s=config.module_deadline_s,
                    max_requeues=args.max_requeues),
                data_plane=args.data_plane,
                shared_cache_entries=resolve_cache_setting(
                    args.shared_cache_entries,
                    cache_config.shared_cache_entries),
                row_cache_rows=resolve_cache_setting(
                    args.row_cache_rows, cache_config.row_cache_rows),
                governor=governor,
                journal_max_entries=args.journal_max_entries)
            if args.profile is not None:
                from repro.obs.profile import profile_call

                outcome, profile_report = profile_call(
                    lambda: runner.run(args.study), top_n=args.profile)
            else:
                outcome, profile_report = runner.run(args.study), None
    except CampaignParked as parked:
        # The governor ran out of ladder: the campaign checkpointed,
        # wrote parked.json, and stopped cleanly.  EX_TEMPFAIL tells
        # schedulers to retry the same command later with --resume.
        print(f"\nparked: {parked}", file=sys.stderr)
        if governor is not None:
            print(governor.render(), file=sys.stderr)
        if args.checkpoint_dir is not None:
            seed_flag = f" --seed {args.seed}" if args.seed is not None \
                else ""
            print(f"{parked.completed} module(s) checkpointed in "
                  f"{args.checkpoint_dir}; once resources recover, "
                  "resume with:", file=sys.stderr)
            print(f"  deeprh campaign {args.study} --preset {args.preset}"
                  f"{seed_flag} --checkpoint-dir {args.checkpoint_dir} "
                  "--resume", file=sys.stderr)
        return PARKED_EXIT
    except KeyboardInterrupt:
        # Graceful stop: no traceback, an honest account of what is on
        # disk, and a copy-pasteable way to pick the campaign back up.
        print("\ninterrupted", file=sys.stderr)
        if args.checkpoint_dir is not None:
            print("completed modules are checkpointed in "
                  f"{args.checkpoint_dir}; resume with:", file=sys.stderr)
            seed_flag = f" --seed {args.seed}" if args.seed is not None \
                else ""
            print(f"  deeprh campaign {args.study} --preset {args.preset}"
                  f"{seed_flag} --checkpoint-dir {args.checkpoint_dir} "
                  "--resume", file=sys.stderr)
        else:
            print("no --checkpoint-dir was given, so nothing was saved; "
                  "rerun with --checkpoint-dir to make campaigns "
                  "resumable", file=sys.stderr)
        return INTERRUPTED_EXIT
    print(outcome.degradation_report())
    if args.trace:
        import json

        directory = pathlib.Path(args.trace)
        directory.mkdir(parents=True, exist_ok=True)
        trace_path = directory / TRACE_FILENAME
        tracer.write_jsonl(trace_path)
        print(f"wrote {trace_path}", file=sys.stderr)
        metrics_path = directory / METRICS_FILENAME
        metrics_path.write_text(
            json.dumps(metrics.to_dict(), sort_keys=True, indent=2) + "\n")
        print(f"wrote {metrics_path}", file=sys.stderr)
    if args.metrics and metrics is not None:
        print()
        print(metrics.render())
    if profile_report is not None:
        print()
        print(profile_report.render())
    if args.save_json:
        from repro.core.serialize import save_result

        path = save_result(outcome.result, args.save_json)
        print(f"wrote {path}", file=sys.stderr)
    return 0 if outcome.ok else 2


def _serve(args) -> int:
    import asyncio

    from repro.faults import parse_fault_plan
    from repro.obs import MetricsRegistry, observed
    from repro.serve.breaker import BreakerPolicy
    from repro.serve.server import CampaignService

    fault_plan = None
    if args.fault_plan:
        fault_seed = args.fault_seed if args.fault_seed is not None else 0
        fault_plan = parse_fault_plan(args.fault_plan, seed=fault_seed)
    from repro.core.toolconfig import load_cache_config, resolve_cache_setting

    cache_config = load_cache_config()
    shared_cache_entries = resolve_cache_setting(
        args.shared_cache_entries, cache_config.shared_cache_entries)
    service = CampaignService(
        args.socket,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        breaker=BreakerPolicy(threshold=args.breaker_threshold,
                              window_s=args.breaker_window,
                              cooldown_s=args.breaker_cooldown),
        fault_plan=fault_plan,
        drain_grace_s=args.drain_grace,
        resume_manifest=args.resume_manifest,
        shared_cache_entries=shared_cache_entries
        if shared_cache_entries is not None else 4096,
        row_cache_rows=resolve_cache_setting(
            args.row_cache_rows, cache_config.row_cache_rows),
        max_attempts=args.max_attempts,
        governor=_build_governor_from_args(args, faults=fault_plan),
        metrics_port=args.metrics_port,
        trace_dir=args.trace)
    collect_metrics = args.metrics or args.metrics_port is not None
    metrics = MetricsRegistry() if collect_metrics else None
    print(f"deeprh serve: listening on {args.socket} "
          f"(max {args.max_inflight} inflight + {args.max_queue} queued); "
          "SIGTERM drains gracefully", file=sys.stderr)
    if args.trace:
        print(f"deeprh serve: request traces into {args.trace}",
              file=sys.stderr)

    async def _run() -> int:
        # The scrape banner waits for the bind: with --metrics-port 0 the
        # kernel picks the port, and only the bound address is useful.
        ready = asyncio.Event()
        serving = asyncio.ensure_future(service.serve_forever(ready=ready))
        await ready.wait()
        if service.metrics_address is not None:
            print(f"deeprh serve: scrape endpoint on "
                  f"http://{service.metrics_address}/metrics",
                  file=sys.stderr, flush=True)
        return await serving

    with observed(metrics=metrics):
        status = asyncio.run(_run())
    print(f"deeprh serve: drained; resume manifest at "
          f"{service.resume_manifest}", file=sys.stderr)
    if metrics is not None and args.metrics:
        print(metrics.render())
    return status


def _top(args) -> int:
    from repro.serve.client import ServeClient, ServeClientError
    from repro.serve.top import poll_once

    poll = 0
    try:
        with ServeClient(args.socket, timeout=5.0) as client:
            while True:
                frame = poll_once(client, poll=poll)
                if args.once:
                    print(frame)
                    return 0
                # ANSI clear + home keeps the frame in place like top(1).
                print("\x1b[2J\x1b[H" + frame, flush=True)
                poll += 1
                client.clock.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (ServeClientError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _trace(args) -> int:
    from repro.obs import summary

    try:
        if args.trace_command == "summarize":
            if getattr(args, "request", None):
                print(summary.request_tree(args.path, args.request))
            else:
                print(summary.summarize(args.path))
        elif args.trace_command == "slowest":
            print(summary.slowest(args.path, top=args.top))
        elif args.trace_command == "export":
            text = summary.export(args.path, args.output_format)
            if args.output:
                import pathlib

                pathlib.Path(args.output).write_text(text)
                print(f"wrote {args.output}", file=sys.stderr)
            else:
                print(text, end="")
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _lint(args) -> int:
    import pathlib

    from repro.statcheck import (
        find_pyproject,
        iter_rules,
        lint_paths,
        load_config,
        render_json,
        render_text,
    )
    from repro.statcheck.engine import discover_files

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0
    paths = args.paths
    if not paths:
        paths = [str(pathlib.Path(__file__).resolve().parent)]
    config_path = args.config
    if config_path is None:
        config_path = find_pyproject(paths[0])
    try:
        config = load_config(config_path)
        files = discover_files(paths)
        violations = lint_paths(files, config=config)
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    render = render_json if args.output_format == "json" else render_text
    print(render(violations, files_checked=len(files)))
    return 1 if violations else 0


def _reproduce(cache: StudyCache, outdir: str) -> int:
    """The one-command reproduction: every artifact into ``outdir``."""
    import pathlib

    from repro.core.serialize import save_result

    directory = pathlib.Path(outdir)
    directory.mkdir(parents=True, exist_ok=True)
    renderers = _experiment_renderers(cache)
    for name in sorted(renderers):
        text = renderers[name]()
        (directory / f"{name}.txt").write_text(text + "\n")
        print(f"wrote {directory / f'{name}.txt'}")
    checks = check_all_observations(cache.temperature(), cache.acttime(),
                                    cache.spatial())
    scorecard = "\n".join(str(c) for c in checks)
    passed = sum(c.passed for c in checks)
    scorecard += f"\n\n{passed}/{len(checks)} observations reproduced\n"
    (directory / "observations.txt").write_text(scorecard)
    print(f"wrote {directory / 'observations.txt'}")
    for label, result in (("temperature", cache.temperature()),
                          ("acttime", cache.acttime()),
                          ("spatial", cache.spatial())):
        path = save_result(result, directory / f"{label}.json")
        print(f"wrote {path}")
    print(f"\n{passed}/{len(checks)} observations reproduced")
    return 0 if passed == len(checks) else 2


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list-modules":
        print(report.table4())
        return 0

    if args.command == "lint":
        return _lint(args)

    if args.command == "trace":
        return _trace(args)

    if args.command == "serve":
        try:
            return _serve(args)
        except ConfigError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

    if args.command == "top":
        return _top(args)

    config = config_mod.preset(args.preset)
    if args.seed is not None:
        config = config.scaled(seed=args.seed)
    cache = StudyCache(config)

    if args.command == "run":
        renderers = _experiment_renderers(cache)
        try:
            renderer = renderers[args.experiment]
        except KeyError:
            parser.error(
                f"unknown experiment {args.experiment!r}; choose from "
                f"{', '.join(sorted(renderers))}")
        try:
            print(renderer())
        except ConfigError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if getattr(args, "save_json", None):
            from repro.core.serialize import save_result

            directory = args.save_json
            for label, result in (("temperature", cache._temperature),
                                  ("acttime", cache._acttime),
                                  ("spatial", cache._spatial)):
                if result is not None:
                    path = save_result(result, f"{directory}/{label}.json")
                    print(f"wrote {path}", file=sys.stderr)
        return 0

    if args.command == "campaign":
        try:
            return _campaign(args, config)
        except ConfigError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

    if args.command == "reproduce":
        return _reproduce(cache, args.outdir)

    if args.command == "observations":
        checks = check_all_observations(cache.temperature(), cache.acttime(),
                                        cache.spatial())
        for check in checks:
            print(check)
        failed = [c for c in checks if not c.passed]
        print(f"\n{len(checks) - len(failed)}/{len(checks)} observations "
              "reproduced")
        return 0 if not failed else 2

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


def run() -> None:  # pragma: no cover
    """Console entry point: exit quietly when a pager closes the pipe."""
    try:
        sys.exit(main())
    except BrokenPipeError:
        # `deeprh trace summarize ... | head` closes stdout early; the
        # interpreter would otherwise traceback while flushing at exit.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(128 + 13)


if __name__ == "__main__":  # pragma: no cover
    run()
