"""Reverse engineering the logical-to-physical row mapping (Section 4.2).

The paper reconstructs each module's internal row remapping by

1. single-sided hammering every row in a window,
2. inferring that the two rows showing the most flips are the aggressor's
   physical neighbors,
3. assembling the aggressor-victim adjacency relations into a physical
   ordering of the logical addresses.

The physical adjacency graph of a row window is a path; we rebuild the
path by chaining neighbors from one endpoint to the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dram.data import DataPattern, ROWSTRIPE
from repro.dram.module import DRAMModule
from repro.errors import MappingError
#: Default single-sided hammer count: the mapping recovery is a one-time
#: offline step (the paper refreshes between tests), so it can hammer far
#: beyond the retention-safe budget of a single test to make even the least
#: vulnerable rows' neighbors flip.
REVENG_HAMMERS = 1_000_000


@dataclass
class InferredMapping:
    """Physical ordering of a window of logical rows.

    ``order`` lists logical rows by inferred physical position; physical
    direction is arbitrary (a die can be probed upside-down), so comparison
    against ground truth must allow reversal.
    """

    order: List[int]

    def position_of(self, logical_row: int) -> int:
        try:
            return self.order.index(logical_row)
        except ValueError:
            raise MappingError(f"row {logical_row} not in inferred window") from None

    def matches(self, module: DRAMModule) -> bool:
        """Does the inferred order agree with the module's true mapping?"""
        truth = sorted(self.order, key=module.to_physical)
        return self.order == truth or self.order == truth[::-1]


#: A second "most-flipping" row only counts as physically adjacent when it
#: flips at least this fraction as much as the first: rows at distance 2
#: couple an order of magnitude more weakly, so edge aggressors (with a
#: single true neighbor) must not promote them.
ADJACENCY_MARGIN = 0.25


def _single_sided_victims(module: DRAMModule, bank: int, aggressor: int,
                          window: Sequence[int], pattern: DataPattern,
                          hammer_count: int) -> List[int]:
    """The two (or fewer) rows flipping most when ``aggressor`` is hammered."""
    model = module.fault_model
    phys_aggr = module.to_physical(aggressor)
    counts: List[Tuple[int, int]] = []
    for candidate in window:
        if candidate == aggressor:
            continue
        phys = module.to_physical(candidate)
        flips = model.row_flip_count(
            bank, phys, hammer_count, module.temperature_c, pattern,
            pattern_victim_row=phys, aggressors=(phys_aggr,))
        if flips > 0:
            counts.append((flips, candidate))
    counts.sort(reverse=True)
    victims = [row for _flips, row in counts[:1]]
    if len(counts) >= 2 and counts[1][0] >= counts[0][0] * ADJACENCY_MARGIN:
        victims.append(counts[1][1])
    return victims


def reverse_engineer_mapping(module: DRAMModule, bank: int,
                             window: Sequence[int],
                             pattern: DataPattern = ROWSTRIPE,
                             hammer_count: int = REVENG_HAMMERS,
                             temperature_c: float = 75.0) -> InferredMapping:
    """Infer the physical ordering of ``window`` (contiguous logical rows).

    The window must map onto a contiguous physical range (true for the
    block-local mappings real vendors use, when the window is aligned to
    the mapping block size).  The test runs at ``temperature_c`` (75 degC
    by default, where most cells are inside their vulnerable range).
    """
    module.temperature_c = float(temperature_c)
    window = list(window)
    if len(window) < 3:
        raise MappingError("need at least three rows to infer adjacency")

    adjacency: Dict[int, List[int]] = {row: [] for row in window}
    window_set = set(window)
    for aggressor in window:
        for victim in _single_sided_victims(module, bank, aggressor, window,
                                            pattern, hammer_count):
            if victim in window_set and victim not in adjacency[aggressor]:
                adjacency[aggressor].append(victim)
                if aggressor not in adjacency[victim]:
                    adjacency[victim].append(aggressor)

    endpoints = [row for row, neighbors in adjacency.items()
                 if len(neighbors) == 1]
    if len(endpoints) != 2:
        raise MappingError(
            f"adjacency is not a path (found {len(endpoints)} endpoints); "
            "is the window aligned to the mapping block size?")

    order = [min(endpoints)]
    previous: Optional[int] = None
    while True:
        current = order[-1]
        next_rows = [n for n in adjacency[current] if n != previous]
        if not next_rows:
            break
        if len(next_rows) > 1:
            raise MappingError("ambiguous adjacency while walking the path")
        previous = current
        order.append(next_rows[0])
    if len(order) != len(window):
        raise MappingError(
            f"path covers {len(order)} of {len(window)} rows; adjacency "
            "inference failed")
    return InferredMapping(order)
