"""Worst-case data pattern (WCDP) selection (Section 4.2, Table 1).

The paper identifies, per module, the pattern producing the most bit flips
among the seven candidates, and uses it for every subsequent experiment.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.dram.data import DataPattern, PATTERNS
from repro.errors import ConfigError
from repro.testing.hammer import BER_HAMMERS, HammerTester


def pattern_flip_counts(tester: HammerTester, bank: int,
                        sample_rows: Sequence[int],
                        hammer_count: int = BER_HAMMERS,
                        temperature_c: Optional[float] = None,
                        patterns: Sequence[DataPattern] = PATTERNS
                        ) -> Dict[str, int]:
    """Total victim flips per candidate pattern over a row sample."""
    if not sample_rows:
        raise ConfigError("need at least one sample row for WCDP selection")
    totals: Dict[str, int] = {}
    for pattern in patterns:
        total = 0
        for row in sample_rows:
            result = tester.ber_test(bank, row, pattern, hammer_count,
                                     temperature_c)
            total += result.count(0)
        totals[pattern.name] = total
    return totals


def find_worst_case_pattern(tester: HammerTester, bank: int,
                            sample_rows: Sequence[int],
                            hammer_count: int = BER_HAMMERS,
                            temperature_c: Optional[float] = None
                            ) -> Tuple[DataPattern, Dict[str, int]]:
    """The module's WCDP and the per-pattern flip totals behind the choice."""
    totals = pattern_flip_counts(tester, bank, sample_rows, hammer_count,
                                 temperature_c)
    best_name = max(totals, key=lambda name: totals[name])
    best = next(p for p in PATTERNS if p.name == best_name)
    return best, totals
