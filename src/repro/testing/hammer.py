"""Hammer-test harness: BER and HCfirst measurements on one module.

Implements the paper's double-sided test loop (Section 4.2): install the
worst-case data pattern in the victim's physical neighborhood, hammer the
two physically-adjacent aggressors at a precise (tAggOn, tAggOff) point,
and read back the victim (distance 0) and the single-sided victims
(distance +/-2).

Two execution modes share the same fault-model math:

* ``"oracle"`` (default) — analytic evaluation; used by the large sweeps.
* ``"command"`` — drives the full SoftMC command path; used by integration
  tests and examples to show that both paths agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.data import DataPattern
from repro.dram.module import DRAMModule
from repro.dram.refresh import RetentionGuard
from repro.errors import ConfigError
from repro.faultmodel.model import FlippedCell
from repro.softmc.session import SoftMCSession
from repro.testing import hcfirst as hcfirst_mod

#: Hammer count of all BER experiments (Section 4.2): low enough for a
#: real system-level attack, high enough to produce many flips.
BER_HAMMERS = 150_000

#: Physical distances read back after each hammer test.
OBSERVE_DISTANCES: Tuple[int, ...] = (0, -2, 2)


@dataclass
class BERResult:
    """Outcome of one BER hammer test on one victim row."""

    victim_row: int
    hammer_count: int
    temperature_c: float
    pattern_name: str
    t_on_ns: float
    t_off_ns: float
    flips_by_distance: Dict[int, List[FlippedCell]] = field(default_factory=dict)

    def count(self, distance: int = 0) -> int:
        """Bit flips observed at the given physical distance."""
        return len(self.flips_by_distance.get(distance, []))

    @property
    def victim_flips(self) -> List[FlippedCell]:
        return self.flips_by_distance.get(0, [])

    @property
    def total(self) -> int:
        return sum(len(v) for v in self.flips_by_distance.values())


class HammerTester:
    """Runs the paper's hammer tests against one module."""

    def __init__(self, module: DRAMModule, mode: str = "oracle",
                 retention_guard: Optional[RetentionGuard] = None,
                 observe_distances: Sequence[int] = OBSERVE_DISTANCES) -> None:
        if mode not in ("oracle", "command"):
            raise ConfigError(f"unknown tester mode {mode!r}")
        self.module = module
        self.mode = mode
        self.guard = retention_guard if retention_guard is not None \
            else RetentionGuard()
        self.observe_distances = tuple(observe_distances)
        self._session = SoftMCSession(module) if mode == "command" else None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _resolve_timing(self, t_on_ns: Optional[float],
                        t_off_ns: Optional[float]) -> Tuple[float, float]:
        timing = self.module.timing
        t_on = timing.tRAS if t_on_ns is None else timing.quantize(t_on_ns)
        t_off = timing.tRP if t_off_ns is None else timing.quantize(t_off_ns)
        return t_on, t_off

    def hammer_period_ns(self, t_on_ns: Optional[float] = None,
                         t_off_ns: Optional[float] = None) -> float:
        """Wall-clock time of one double-sided hammer (two activations)."""
        t_on, t_off = self._resolve_timing(t_on_ns, t_off_ns)
        return 2.0 * (t_on + t_off)

    def max_safe_hammers(self, t_on_ns: Optional[float] = None,
                         t_off_ns: Optional[float] = None) -> int:
        """Largest hammer count that stays retention-safe (Section 4.2)."""
        return min(hcfirst_mod.MAX_HAMMERS,
                   self.guard.max_hammers(self.hammer_period_ns(t_on_ns, t_off_ns)))

    def _trial_gen(self, bank: int, victim: int,
                   repetition: int) -> np.random.Generator:
        return self.module.tree.generator("trial", bank, victim, repetition)

    def _set_temperature(self, temperature_c: Optional[float]) -> float:
        if temperature_c is not None:
            self.module.temperature_c = float(temperature_c)
        return self.module.temperature_c

    def observed_physical_rows(self, victim_logical: int) -> Dict[int, int]:
        """Physical row read back for each observed distance."""
        phys_victim = self.module.to_physical(victim_logical)
        rows = {}
        for distance in self.observe_distances:
            phys = phys_victim + distance
            if 0 <= phys < self.module.geometry.rows_per_bank:
                rows[distance] = phys
        return rows

    # ------------------------------------------------------------------
    # BER tests
    # ------------------------------------------------------------------
    def ber_test(self, bank: int, victim_logical: int, pattern: DataPattern,
                 hammer_count: int = BER_HAMMERS,
                 temperature_c: Optional[float] = None,
                 t_on_ns: Optional[float] = None,
                 t_off_ns: Optional[float] = None,
                 repetition: int = 0) -> BERResult:
        """One hammer test; returns flips at each observed distance."""
        t_on, t_off = self._resolve_timing(t_on_ns, t_off_ns)
        temperature = self._set_temperature(temperature_c)
        self.guard.check(hammer_count * 2 * (t_on + t_off), "BER test")
        trial_gen = self._trial_gen(bank, victim_logical, repetition)
        result = BERResult(victim_row=victim_logical, hammer_count=hammer_count,
                           temperature_c=temperature, pattern_name=pattern.name,
                           t_on_ns=t_on, t_off_ns=t_off)
        if self.mode == "oracle":
            self._ber_oracle(bank, victim_logical, pattern, hammer_count,
                             temperature, t_on, t_off, trial_gen, result)
        else:
            self._ber_command(bank, victim_logical, pattern, hammer_count,
                              t_on, t_off, trial_gen, result)
        return result

    def _ber_oracle(self, bank, victim_logical, pattern, hammer_count,
                    temperature, t_on, t_off, trial_gen, result) -> None:
        model = self.module.fault_model
        phys_victim = self.module.to_physical(victim_logical)
        aggressors = (phys_victim - 1, phys_victim + 1)
        for distance, phys in self.observed_physical_rows(victim_logical).items():
            flips = model.flip_cells(
                bank, phys, hammer_count, temperature, pattern,
                pattern_victim_row=phys_victim, aggressors=aggressors,
                t_on_ns=t_on, t_off_ns=t_off, trial_gen=trial_gen)
            result.flips_by_distance[distance] = flips

    def _ber_command(self, bank, victim_logical, pattern, hammer_count,
                     t_on, t_off, trial_gen, result) -> None:
        session = self._session
        session.install_pattern(bank, victim_logical, pattern)
        self.module.set_trial_noise(trial_gen)
        try:
            session.hammer_double_sided(bank, victim_logical, hammer_count,
                                        t_on_ns=t_on, t_off_ns=t_off)
            for distance, phys in self.observed_physical_rows(
                    victim_logical).items():
                logical = self.module.to_logical(phys)
                flips = [
                    FlippedCell(bank, phys, f.chip, f.col, f.bit)
                    for f in session.collect_flips(bank, logical)
                ]
                result.flips_by_distance[distance] = flips
        finally:
            self.module.set_trial_noise(None)

    def ber_counts(self, bank: int, victim_logical: int, pattern: DataPattern,
                   hammer_count: int = BER_HAMMERS,
                   temperature_c: Optional[float] = None,
                   t_on_ns: Optional[float] = None,
                   t_off_ns: Optional[float] = None,
                   repetitions: int = 1) -> Dict[int, float]:
        """Mean flips per observed distance across repetitions."""
        if repetitions <= 0:
            raise ConfigError("repetitions must be positive")
        totals: Dict[int, float] = {d: 0.0 for d in self.observe_distances}
        for rep in range(repetitions):
            result = self.ber_test(bank, victim_logical, pattern, hammer_count,
                                   temperature_c, t_on_ns, t_off_ns, rep)
            for distance in totals:
                totals[distance] += result.count(distance)
        return {d: total / repetitions for d, total in totals.items()}

    # ------------------------------------------------------------------
    # HCfirst
    # ------------------------------------------------------------------
    def hcfirst(self, bank: int, victim_logical: int, pattern: DataPattern,
                temperature_c: Optional[float] = None,
                t_on_ns: Optional[float] = None,
                t_off_ns: Optional[float] = None,
                repetition: int = 0) -> Optional[int]:
        """Binary-searched HCfirst of the victim row (None: not vulnerable)."""
        t_on, t_off = self._resolve_timing(t_on_ns, t_off_ns)
        temperature = self._set_temperature(temperature_c)
        maximum = self.max_safe_hammers(t_on, t_off)
        trial_gen = self._trial_gen(bank, victim_logical, repetition)

        if self.mode == "oracle":
            model = self.module.fault_model
            phys_victim = self.module.to_physical(victim_logical)
            threshold = model.row_hcfirst(
                bank, phys_victim, temperature, pattern,
                pattern_victim_row=phys_victim,
                aggressors=(phys_victim - 1, phys_victim + 1),
                t_on_ns=t_on, t_off_ns=t_off, trial_gen=trial_gen)

            def has_flips(hammer_count: int) -> bool:
                return hammer_count >= threshold
        else:
            def has_flips(hammer_count: int) -> bool:
                result = self.ber_test(bank, victim_logical, pattern,
                                       hammer_count, temperature, t_on, t_off,
                                       repetition)
                return result.count(0) > 0

        return hcfirst_mod.binary_search_hcfirst(has_flips, maximum=maximum)

    def hcfirst_min(self, bank: int, victim_logical: int, pattern: DataPattern,
                    temperature_c: Optional[float] = None,
                    t_on_ns: Optional[float] = None,
                    t_off_ns: Optional[float] = None,
                    repetitions: int = 5) -> Optional[int]:
        """Minimum HCfirst across repetitions (Fig. 11 plots this)."""
        values = [
            self.hcfirst(bank, victim_logical, pattern, temperature_c,
                         t_on_ns, t_off_ns, rep)
            for rep in range(repetitions)
        ]
        observed = [v for v in values if v is not None]
        return min(observed) if observed else None
