"""Hammer-test harness: BER and HCfirst measurements on one module.

Implements the paper's double-sided test loop (Section 4.2): install the
worst-case data pattern in the victim's physical neighborhood, hammer the
two physically-adjacent aggressors at a precise (tAggOn, tAggOff) point,
and read back the victim (distance 0) and the single-sided victims
(distance +/-2).

Two execution modes share the same fault-model math:

* ``"oracle"`` (default) — analytic evaluation; used by the large sweeps.
* ``"command"`` — drives the full SoftMC command path; used by integration
  tests and examples to show that both paths agree.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.data import DataPattern
from repro.dram.module import DRAMModule
from repro.dram.refresh import RetentionGuard
from repro.errors import ConfigError
from repro.faultmodel import batch as batch_mod
from repro.faultmodel.batch import OraclePoint
from repro.faultmodel.model import FlippedCell
from repro.softmc.session import SoftMCSession
from repro.testing import hcfirst as hcfirst_mod

#: Hammer count of all BER experiments (Section 4.2): low enough for a
#: real system-level attack, high enough to produce many flips.
BER_HAMMERS = 150_000

#: Physical distances read back after each hammer test.
OBSERVE_DISTANCES: Tuple[int, ...] = (0, -2, 2)


@dataclass
class BERResult:
    """Outcome of one BER hammer test on one victim row."""

    victim_row: int
    hammer_count: int
    temperature_c: float
    pattern_name: str
    t_on_ns: float
    t_off_ns: float
    flips_by_distance: Dict[int, List[FlippedCell]] = field(default_factory=dict)

    def count(self, distance: int = 0) -> int:
        """Bit flips observed at the given physical distance."""
        return len(self.flips_by_distance.get(distance, []))

    @property
    def victim_flips(self) -> List[FlippedCell]:
        return self.flips_by_distance.get(0, [])

    @property
    def total(self) -> int:
        return sum(len(v) for v in self.flips_by_distance.values())


class HammerTester:
    """Runs the paper's hammer tests against one module."""

    def __init__(self, module: DRAMModule, mode: str = "oracle",
                 retention_guard: Optional[RetentionGuard] = None,
                 observe_distances: Sequence[int] = OBSERVE_DISTANCES) -> None:
        if mode not in ("oracle", "command"):
            raise ConfigError(f"unknown tester mode {mode!r}")
        self.module = module
        self.mode = mode
        self.guard = retention_guard if retention_guard is not None \
            else RetentionGuard()
        self.observe_distances = tuple(observe_distances)
        self._session = SoftMCSession(module) if mode == "command" else None
        self._batch_oracle: Optional[batch_mod.BatchOracle] = None
        self._noise_cache: "OrderedDict" = OrderedDict()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _resolve_timing(self, t_on_ns: Optional[float],
                        t_off_ns: Optional[float]) -> Tuple[float, float]:
        timing = self.module.timing
        t_on = timing.tRAS if t_on_ns is None else timing.quantize(t_on_ns)
        t_off = timing.tRP if t_off_ns is None else timing.quantize(t_off_ns)
        return t_on, t_off

    def hammer_period_ns(self, t_on_ns: Optional[float] = None,
                         t_off_ns: Optional[float] = None) -> float:
        """Wall-clock time of one double-sided hammer (two activations)."""
        t_on, t_off = self._resolve_timing(t_on_ns, t_off_ns)
        return 2.0 * (t_on + t_off)

    def max_safe_hammers(self, t_on_ns: Optional[float] = None,
                         t_off_ns: Optional[float] = None) -> int:
        """Largest hammer count that stays retention-safe (Section 4.2)."""
        return min(hcfirst_mod.MAX_HAMMERS,
                   self.guard.max_hammers(self.hammer_period_ns(t_on_ns, t_off_ns)))

    #: Bound on the memoized trial-noise draw sequences (below).
    NOISE_CACHE_ENTRIES = 1024

    def _trial_gen(self, bank: int, victim: int,
                   repetition: int) -> np.random.Generator:
        return self.module.tree.generator("trial", bank, victim, repetition)

    def _trial_noise_draws(self, bank: int, victim: int, repetition: int,
                           specs: Tuple[Tuple[float, int], ...]
                           ) -> List[np.ndarray]:
        """Sequential ``normal(0, sigma, n)`` draws from a fresh trial gen.

        The draws are a pure function of the generator's seed path and the
        ``(sigma, n)`` sequence, so they are memoized: studies revisit the
        same ``(row, repetition)`` across patterns, hammer counts and
        timing grids, and each revisit would otherwise pay a fresh Philox
        construction plus the draws.  Callers must treat the returned
        arrays as read-only (they are shared across hits).
        """
        key = (bank, victim, repetition, specs)
        draws = self._noise_cache.get(key)
        if draws is None:
            gen = self._trial_gen(bank, victim, repetition)
            draws = [gen.normal(0.0, sigma, size=n) for sigma, n in specs]
            if len(self._noise_cache) >= self.NOISE_CACHE_ENTRIES:
                self._noise_cache.popitem(last=False)
            self._noise_cache[key] = draws
        else:
            self._noise_cache.move_to_end(key)
        return draws

    def _set_temperature(self, temperature_c: Optional[float]) -> float:
        if temperature_c is not None:
            self.module.temperature_c = float(temperature_c)
        return self.module.temperature_c

    def observed_physical_rows(self, victim_logical: int) -> Dict[int, int]:
        """Physical row read back for each observed distance."""
        phys_victim = self.module.to_physical(victim_logical)
        rows = {}
        for distance in self.observe_distances:
            phys = phys_victim + distance
            if 0 <= phys < self.module.geometry.rows_per_bank:
                rows[distance] = phys
        return rows

    # ------------------------------------------------------------------
    # Batched grid evaluation
    # ------------------------------------------------------------------
    @property
    def batch_oracle(self) -> batch_mod.BatchOracle:
        """Grid view of this module's analytic oracle (oracle mode only)."""
        if self._batch_oracle is None:
            self._batch_oracle = batch_mod.BatchOracle(self.module.fault_model)
        return self._batch_oracle

    @staticmethod
    def _sign_uniform(units: np.ndarray) -> bool:
        """Whether hammer units are positive (or not) at *every* grid point.

        The batched path draws trial noise once per observed row and reuses
        it across grid points; that only reproduces the pointwise RNG
        stream when the draw *happens* at every point or at none (the
        pointwise oracle skips the draw for zero-unit points).  With the
        standard double-sided geometry units are timing-independent in
        sign, so this always holds; it is checked anyway so exotic
        aggressor layouts fall back to the pointwise loop instead of
        silently diverging.
        """
        return bool((units > 0.0).all() or (units <= 0.0).all())

    def ber_grid(self, bank: int, victim_logical: int, pattern: DataPattern,
                 points: Sequence[OraclePoint],
                 hammer_count: int = BER_HAMMERS,
                 repetition: int = 0) -> List[BERResult]:
        """BER tests at every grid point in one batched oracle pass.

        Element ``j`` is bit-for-bit identical to ``ber_test(...)`` at
        ``points[j]`` — same flips, same order, same field values — but the
        per-row cell arrays, stored-bit masks and pattern factors are built
        once and reused across the whole grid.  Command mode falls back to
        the pointwise loop (the command path is inherently per-point).
        """
        points = list(points)

        def pointwise() -> List[BERResult]:
            return [
                self.ber_test(bank, victim_logical, pattern, hammer_count,
                              p.temperature_c, p.t_on_ns, p.t_off_ns,
                              repetition)
                for p in points
            ]

        if self.mode != "oracle" or not points:
            return pointwise()

        model = self.module.fault_model
        phys_victim = self.module.to_physical(victim_logical)
        aggressors = (phys_victim - 1, phys_victim + 1)
        observed = self.observed_physical_rows(victim_logical)

        # Timing resolution is pure, so the per-row units vectors can be
        # checked for draw alignment before any module state is touched;
        # misaligned grids (never with the standard geometry) take the
        # pointwise path from an unmodified module.
        timings = [self._resolve_timing(p.t_on_ns, p.t_off_ns) for p in points]
        # Resolve each distinct timing once; per-point unit vectors are
        # exact gathers of the per-timing scalars.
        seen: Dict[Tuple[float, float], int] = {}
        timing_map = np.array([seen.setdefault(t, len(seen)) for t in timings])
        unique_timings = list(seen)
        units_by_distance = {
            distance: model.kinetics.hammer_units_grid(
                phys, aggressors, [on for on, _ in unique_timings],
                [off for _, off in unique_timings])[timing_map]
            for distance, phys in observed.items()
        }
        if not all(self._sign_uniform(u) for u in units_by_distance.values()):
            return pointwise()

        results: List[BERResult] = []
        resolved: List[batch_mod.ResolvedPoint] = []
        checked: set = set()
        for point, (t_on, t_off) in zip(points, timings):
            temperature = self._set_temperature(point.temperature_c)
            if (t_on, t_off) not in checked:
                # ``check`` is a pure function of the elapsed time, so one
                # call per distinct timing raises at exactly the point the
                # pointwise loop would (the timing's first occurrence).
                self.guard.check(hammer_count * 2 * (t_on + t_off),
                                 "BER test")
                checked.add((t_on, t_off))
            resolved.append((temperature, t_on, t_off))
            results.append(BERResult(
                victim_row=victim_logical, hammer_count=hammer_count,
                temperature_c=temperature, pattern_name=pattern.name,
                t_on_ns=t_on, t_off_ns=t_off))

        # The (temperature column, timing) grouping is a property of the
        # sweep alone, so it is computed once here and shared by every
        # observed distance instead of re-derived inside the oracle.
        deduped = batch_mod.dedupe_temperatures([t for t, _, _ in resolved])
        groups = batch_mod.group_points(deduped[1], timing_map,
                                        len(unique_timings))

        oracle = self.batch_oracle
        # One draw per observed row, shared by every point: each pointwise
        # call starts a fresh generator from the same seed path, so its
        # draws are identical across points.  The whole draw sequence is
        # resolved up front so it can be served from the memoized cache.
        row_cells = {distance: model.population.cells_for(bank, phys)
                     for distance, phys in observed.items()}
        draws_needed = {
            distance: (len(row_cells[distance])
                       and units_by_distance[distance][0] > 0.0
                       and row_cells[distance].trial_sigma > 0.0)
            for distance in observed
        }
        specs = tuple(
            (row_cells[distance].trial_sigma, len(row_cells[distance]))
            for distance in observed if draws_needed[distance])
        draws = iter(self._trial_noise_draws(bank, victim_logical,
                                             repetition, specs))
        for distance, phys in observed.items():
            units = units_by_distance[distance]
            cells = row_cells[distance]
            noise = next(draws) if draws_needed[distance] else None
            _, _, flips = oracle.point_flip_matrix(
                bank, phys, pattern, phys_victim, aggressors, resolved,
                hammer_count, units=units, trial_noise=noise,
                deduped=deduped, groups=groups)
            # One record per flipping cell, built lazily and shared across
            # the points that flip it: FlippedCell is a frozen value
            # object, so the shared instances compare (and serialize)
            # identically to the pointwise path's per-point constructions.
            records: Dict[int, FlippedCell] = {}
            per_point: List[List[FlippedCell]] = [[] for _ in results]
            # Flat nonzero + divmod beats 2-D ``np.nonzero`` ~7x on these
            # small bool matrices; the stable sort by point index then
            # preserves ascending cell order within each point — the
            # pointwise emission order.
            cell_index, point_index = np.divmod(
                np.flatnonzero(flips.ravel()), flips.shape[1])
            order = np.argsort(point_index, kind="stable")
            for j, i in zip(point_index[order].tolist(),
                            cell_index[order].tolist()):
                record = records.get(i)
                if record is None:
                    records[i] = record = FlippedCell(
                        bank, phys, int(cells.chip[i]), int(cells.col[i]),
                        int(cells.bit[i]))
                per_point[j].append(record)
            for j, result in enumerate(results):
                result.flips_by_distance[distance] = per_point[j]
        return results

    def hcfirst_grid(self, bank: int, victim_logical: int,
                     pattern: DataPattern, points: Sequence[OraclePoint],
                     repetition: int = 0) -> List[Optional[int]]:
        """HCfirst at every grid point in one batched oracle pass.

        Element ``j`` equals ``hcfirst(...)`` at ``points[j]`` exactly; the
        binary search runs against a per-point analytic threshold, so
        batching only removes redundant per-point threshold rebuilds.
        """
        points = list(points)

        def pointwise() -> List[Optional[int]]:
            return [
                self.hcfirst(bank, victim_logical, pattern, p.temperature_c,
                             p.t_on_ns, p.t_off_ns, repetition)
                for p in points
            ]

        if self.mode != "oracle" or not points:
            return pointwise()

        model = self.module.fault_model
        phys_victim = self.module.to_physical(victim_logical)
        aggressors = (phys_victim - 1, phys_victim + 1)
        timings = [self._resolve_timing(p.t_on_ns, p.t_off_ns) for p in points]
        units = model.kinetics.hammer_units_grid(
            phys_victim, aggressors,
            [t_on for t_on, _ in timings], [t_off for _, t_off in timings])
        if not self._sign_uniform(units):
            return pointwise()

        resolved: List[batch_mod.ResolvedPoint] = []
        maxima: List[int] = []
        max_by_timing: Dict[Tuple[float, float], int] = {}
        for point, (t_on, t_off) in zip(points, timings):
            temperature = self._set_temperature(point.temperature_c)
            resolved.append((temperature, t_on, t_off))
            if (t_on, t_off) not in max_by_timing:
                # Pure in the timing pair (the retention budget is fixed),
                # so a temperature sweep resolves it once.
                max_by_timing[(t_on, t_off)] = self.max_safe_hammers(t_on,
                                                                     t_off)
            maxima.append(max_by_timing[(t_on, t_off)])

        deduped = batch_mod.dedupe_temperatures([t for t, _, _ in resolved])
        timing_seen: Dict[Tuple[float, float], int] = {}
        timing_map = np.array([timing_seen.setdefault(t, len(timing_seen))
                               for t in timings])
        groups = batch_mod.group_points(deduped[1], timing_map,
                                        len(timing_seen))

        cells = model.population.cells_for(bank, phys_victim)
        noise = None
        if len(cells) and units[0] > 0.0 and cells.trial_sigma > 0.0:
            noise = self._trial_noise_draws(
                bank, victim_logical, repetition,
                ((cells.trial_sigma, len(cells)),))[0]
        # The per-point searches reduce to one vectorized run: the oracle
        # predicate is ``count >= threshold`` and the minimum over cells is
        # order-independent, so this matches the scalar search per point.
        thresholds = self.batch_oracle.row_hcfirst_vector(
            bank, phys_victim, pattern, phys_victim, aggressors, resolved,
            units=units, trial_noise=noise, deduped=deduped, groups=groups)
        return hcfirst_mod.binary_search_hcfirst_grid(thresholds, maxima)

    def hcfirst_min_grid(self, bank: int, victim_logical: int,
                         pattern: DataPattern, points: Sequence[OraclePoint],
                         repetitions: int = 5) -> List[Optional[int]]:
        """Per-point minimum HCfirst across repetitions (grid ``hcfirst_min``)."""
        points = list(points)
        per_rep = [
            self.hcfirst_grid(bank, victim_logical, pattern, points, rep)
            for rep in range(repetitions)
        ]
        out: List[Optional[int]] = []
        for j in range(len(points)):
            observed = [rep[j] for rep in per_rep if rep[j] is not None]
            out.append(min(observed) if observed else None)
        return out

    # ------------------------------------------------------------------
    # BER tests
    # ------------------------------------------------------------------
    def ber_test(self, bank: int, victim_logical: int, pattern: DataPattern,
                 hammer_count: int = BER_HAMMERS,
                 temperature_c: Optional[float] = None,
                 t_on_ns: Optional[float] = None,
                 t_off_ns: Optional[float] = None,
                 repetition: int = 0) -> BERResult:
        """One hammer test; returns flips at each observed distance."""
        t_on, t_off = self._resolve_timing(t_on_ns, t_off_ns)
        temperature = self._set_temperature(temperature_c)
        self.guard.check(hammer_count * 2 * (t_on + t_off), "BER test")
        trial_gen = self._trial_gen(bank, victim_logical, repetition)
        result = BERResult(victim_row=victim_logical, hammer_count=hammer_count,
                           temperature_c=temperature, pattern_name=pattern.name,
                           t_on_ns=t_on, t_off_ns=t_off)
        if self.mode == "oracle":
            self._ber_oracle(bank, victim_logical, pattern, hammer_count,
                             temperature, t_on, t_off, trial_gen, result)
        else:
            self._ber_command(bank, victim_logical, pattern, hammer_count,
                              t_on, t_off, trial_gen, result)
        return result

    def _ber_oracle(self, bank, victim_logical, pattern, hammer_count,
                    temperature, t_on, t_off, trial_gen, result) -> None:
        model = self.module.fault_model
        phys_victim = self.module.to_physical(victim_logical)
        aggressors = (phys_victim - 1, phys_victim + 1)
        for distance, phys in self.observed_physical_rows(victim_logical).items():
            flips = model.flip_cells(
                bank, phys, hammer_count, temperature, pattern,
                pattern_victim_row=phys_victim, aggressors=aggressors,
                t_on_ns=t_on, t_off_ns=t_off, trial_gen=trial_gen)
            result.flips_by_distance[distance] = flips

    def _ber_command(self, bank, victim_logical, pattern, hammer_count,
                     t_on, t_off, trial_gen, result) -> None:
        session = self._session
        session.install_pattern(bank, victim_logical, pattern)
        self.module.set_trial_noise(trial_gen)
        try:
            session.hammer_double_sided(bank, victim_logical, hammer_count,
                                        t_on_ns=t_on, t_off_ns=t_off)
            for distance, phys in self.observed_physical_rows(
                    victim_logical).items():
                logical = self.module.to_logical(phys)
                flips = [
                    FlippedCell(bank, phys, f.chip, f.col, f.bit)
                    for f in session.collect_flips(bank, logical)
                ]
                result.flips_by_distance[distance] = flips
        finally:
            self.module.set_trial_noise(None)

    def ber_counts(self, bank: int, victim_logical: int, pattern: DataPattern,
                   hammer_count: int = BER_HAMMERS,
                   temperature_c: Optional[float] = None,
                   t_on_ns: Optional[float] = None,
                   t_off_ns: Optional[float] = None,
                   repetitions: int = 1) -> Dict[int, float]:
        """Mean flips per observed distance across repetitions."""
        if repetitions <= 0:
            raise ConfigError("repetitions must be positive")
        totals: Dict[int, float] = {d: 0.0 for d in self.observe_distances}
        for rep in range(repetitions):
            result = self.ber_test(bank, victim_logical, pattern, hammer_count,
                                   temperature_c, t_on_ns, t_off_ns, rep)
            for distance in totals:
                totals[distance] += result.count(distance)
        return {d: total / repetitions for d, total in totals.items()}

    # ------------------------------------------------------------------
    # HCfirst
    # ------------------------------------------------------------------
    def hcfirst(self, bank: int, victim_logical: int, pattern: DataPattern,
                temperature_c: Optional[float] = None,
                t_on_ns: Optional[float] = None,
                t_off_ns: Optional[float] = None,
                repetition: int = 0) -> Optional[int]:
        """Binary-searched HCfirst of the victim row (None: not vulnerable)."""
        t_on, t_off = self._resolve_timing(t_on_ns, t_off_ns)
        temperature = self._set_temperature(temperature_c)
        maximum = self.max_safe_hammers(t_on, t_off)
        trial_gen = self._trial_gen(bank, victim_logical, repetition)

        if self.mode == "oracle":
            model = self.module.fault_model
            phys_victim = self.module.to_physical(victim_logical)
            threshold = model.row_hcfirst(
                bank, phys_victim, temperature, pattern,
                pattern_victim_row=phys_victim,
                aggressors=(phys_victim - 1, phys_victim + 1),
                t_on_ns=t_on, t_off_ns=t_off, trial_gen=trial_gen)

            def has_flips(hammer_count: int) -> bool:
                return hammer_count >= threshold
        else:
            def has_flips(hammer_count: int) -> bool:
                result = self.ber_test(bank, victim_logical, pattern,
                                       hammer_count, temperature, t_on, t_off,
                                       repetition)
                return result.count(0) > 0

        return hcfirst_mod.binary_search_hcfirst(has_flips, maximum=maximum)

    def hcfirst_min(self, bank: int, victim_logical: int, pattern: DataPattern,
                    temperature_c: Optional[float] = None,
                    t_on_ns: Optional[float] = None,
                    t_off_ns: Optional[float] = None,
                    repetitions: int = 5) -> Optional[int]:
        """Minimum HCfirst across repetitions (Fig. 11 plots this)."""
        values = [
            self.hcfirst(bank, victim_logical, pattern, temperature_c,
                         t_on_ns, t_off_ns, rep)
            for rep in range(repetitions)
        ]
        observed = [v for v in values if v is not None]
        return min(observed) if observed else None
