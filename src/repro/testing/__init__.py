"""Characterization methodology (Section 4.2 of the paper).

Test routines built on the SoftMC substrate: double-sided hammer tests with
controlled aggressor on/off times, BER measurement at a fixed hammer count,
the HCfirst binary search, worst-case data pattern selection, tested-row
sampling, and reverse engineering of the logical-to-physical row mapping.
"""

from repro.testing.hammer import BERResult, HammerTester
from repro.testing.hcfirst import binary_search_hcfirst
from repro.testing.patterns import find_worst_case_pattern
from repro.testing.rows import standard_row_sample
from repro.testing.mapping_reveng import InferredMapping, reverse_engineer_mapping

__all__ = [
    "HammerTester",
    "BERResult",
    "binary_search_hcfirst",
    "find_worst_case_pattern",
    "standard_row_sample",
    "InferredMapping",
    "reverse_engineer_mapping",
]
