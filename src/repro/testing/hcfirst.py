"""The HCfirst binary search (Section 4.2, "Metrics").

The paper locates the minimum hammer count that produces the first bit
flip with a binary search: start at 256 K hammers with a step of 128 K;
on every test, decrease the hammer count by the step if flips were
observed, increase it otherwise; halve the step each round down to a
resolution of 512 activations.  Tests never exceed the hammer count that
fits in a retention-safe window (512 K at nominal timings).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.faultmodel.kernels import step_lookup

#: Paper defaults (in hammers; one hammer = one aggressor-pair activation).
INITIAL_HAMMERS = 256 * 1024
INITIAL_DELTA = 128 * 1024
RESOLUTION = 512
MAX_HAMMERS = 512 * 1024


def binary_search_hcfirst(has_flips: Callable[[int], bool],
                          initial: int = INITIAL_HAMMERS,
                          initial_delta: int = INITIAL_DELTA,
                          resolution: int = RESOLUTION,
                          maximum: int = MAX_HAMMERS) -> Optional[int]:
    """Run the paper's binary search against a flip predicate.

    Args:
        has_flips: callable running one hammer test; must return whether the
            victim showed at least one bit flip at the given hammer count.
        initial / initial_delta / resolution / maximum: search parameters;
            the defaults are the paper's.

    Returns:
        The smallest tested hammer count that produced a flip (an upper
        bound on the true HCfirst within ``resolution``), or ``None`` if
        the row never flips even at ``maximum`` hammers (the row is not
        vulnerable under the tested conditions).
    """
    if initial <= 0 or initial_delta <= 0 or resolution <= 0:
        raise ConfigError("search parameters must be positive")
    if initial > maximum:
        initial = maximum

    hammer_count = initial
    delta = initial_delta
    lowest_flipping: Optional[int] = None
    while delta >= resolution:
        if has_flips(hammer_count):
            if lowest_flipping is None or hammer_count < lowest_flipping:
                lowest_flipping = hammer_count
            hammer_count -= delta
        else:
            hammer_count += delta
        hammer_count = max(resolution, min(hammer_count, maximum))
        delta //= 2

    if lowest_flipping is None:
        # The search climbed without ever flipping; one last test at the
        # ceiling decides vulnerability.
        if has_flips(maximum):
            return maximum
        return None
    return lowest_flipping


def _vector_search(limits: np.ndarray, ceilings: np.ndarray, initial: int,
                   initial_delta: int, resolution: int) -> np.ndarray:
    """The scalar search's iteration, run over arrays (-1 means None)."""
    counts = np.minimum(initial, ceilings)
    lowest = np.full(limits.shape, -1, dtype=np.int64)
    delta = initial_delta
    while delta >= resolution:
        flips = counts >= limits
        better = flips & ((lowest < 0) | (counts < lowest))
        lowest = np.where(better, counts, lowest)
        counts = np.where(flips, counts - delta, counts + delta)
        counts = np.maximum(resolution, np.minimum(counts, ceilings))
        delta //= 2
    never = lowest < 0
    at_ceiling = never & (ceilings >= limits)
    return np.where(at_ceiling, ceilings, lowest)


def _reachable_counts(initial: int, initial_delta: int, resolution: int,
                      maximum: int) -> set:
    """Superset of every hammer count the search can ever test."""
    start = min(initial, maximum)
    values = {start, maximum}
    frontier = {start}
    delta = initial_delta
    while delta >= resolution:
        frontier = {
            max(resolution, min(value + step, maximum))
            for value in frontier for step in (-delta, delta)
        }
        values |= frontier
        delta //= 2
    return values


_TABLE_CACHE: dict = {}
_TABLE_CACHE_ENTRIES = 128


def _search_table(initial: int, initial_delta: int, resolution: int,
                  maximum: int) -> tuple:
    """``(breakpoints, results)`` lookup table for one parameter set.

    The search only ever compares the threshold against reachable hammer
    counts, so its result is a step function of the threshold with
    breakpoints at those counts: for any threshold ``T``, the outcome
    equals the outcome at the smallest reachable count ``>= T``.
    """
    key = (initial, initial_delta, resolution, maximum)
    table = _TABLE_CACHE.get(key)
    if table is None:
        breaks = np.array(
            sorted(_reachable_counts(initial, initial_delta, resolution,
                                     maximum)), dtype=float)
        results = _vector_search(breaks,
                                 np.full(breaks.shape, maximum, np.int64),
                                 initial, initial_delta, resolution)
        if len(_TABLE_CACHE) >= _TABLE_CACHE_ENTRIES:
            _TABLE_CACHE.clear()
        table = _TABLE_CACHE[key] = (breaks, results)
    return table


def binary_search_hcfirst_grid(thresholds: Sequence[float],
                               maxima: Sequence[int],
                               initial: int = INITIAL_HAMMERS,
                               initial_delta: int = INITIAL_DELTA,
                               resolution: int = RESOLUTION
                               ) -> List[Optional[int]]:
    """Run the paper's search at many grid points against known thresholds.

    The analytic oracle's flip predicate is ``count >= threshold``, which
    makes the search a pure function of ``(threshold, maximum)``: element
    ``j`` equals ``binary_search_hcfirst(lambda c: c >= thresholds[j],
    maximum=maxima[j])`` exactly.  Each distinct ``maximum`` resolves
    through a cached step-function table (one vectorized replay of the
    search at every reachable count), so a grid point costs one binary
    lookup.  NaN/inf thresholds land past the last breakpoint and return
    ``None``, matching the scalar search's never-flipping answer.
    """
    if initial <= 0 or initial_delta <= 0 or resolution <= 0:
        raise ConfigError("search parameters must be positive")
    limits = np.asarray(thresholds, dtype=float)
    ceilings = np.asarray(maxima, dtype=np.int64)
    out = np.empty(limits.shape, dtype=np.int64)
    for maximum in np.unique(ceilings):
        selected = ceilings == maximum
        breaks, results = _search_table(initial, initial_delta, resolution,
                                        int(maximum))
        out[selected] = step_lookup(breaks, results, limits[selected])
    return [None if value < 0 else int(value) for value in out]
