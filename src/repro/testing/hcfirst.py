"""The HCfirst binary search (Section 4.2, "Metrics").

The paper locates the minimum hammer count that produces the first bit
flip with a binary search: start at 256 K hammers with a step of 128 K;
on every test, decrease the hammer count by the step if flips were
observed, increase it otherwise; halve the step each round down to a
resolution of 512 activations.  Tests never exceed the hammer count that
fits in a retention-safe window (512 K at nominal timings).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigError

#: Paper defaults (in hammers; one hammer = one aggressor-pair activation).
INITIAL_HAMMERS = 256 * 1024
INITIAL_DELTA = 128 * 1024
RESOLUTION = 512
MAX_HAMMERS = 512 * 1024


def binary_search_hcfirst(has_flips: Callable[[int], bool],
                          initial: int = INITIAL_HAMMERS,
                          initial_delta: int = INITIAL_DELTA,
                          resolution: int = RESOLUTION,
                          maximum: int = MAX_HAMMERS) -> Optional[int]:
    """Run the paper's binary search against a flip predicate.

    Args:
        has_flips: callable running one hammer test; must return whether the
            victim showed at least one bit flip at the given hammer count.
        initial / initial_delta / resolution / maximum: search parameters;
            the defaults are the paper's.

    Returns:
        The smallest tested hammer count that produced a flip (an upper
        bound on the true HCfirst within ``resolution``), or ``None`` if
        the row never flips even at ``maximum`` hammers (the row is not
        vulnerable under the tested conditions).
    """
    if initial <= 0 or initial_delta <= 0 or resolution <= 0:
        raise ConfigError("search parameters must be positive")
    if initial > maximum:
        initial = maximum

    hammer_count = initial
    delta = initial_delta
    lowest_flipping: Optional[int] = None
    while delta >= resolution:
        if has_flips(hammer_count):
            if lowest_flipping is None or hammer_count < lowest_flipping:
                lowest_flipping = hammer_count
            hammer_count -= delta
        else:
            hammer_count += delta
        hammer_count = max(resolution, min(hammer_count, maximum))
        delta //= 2

    if lowest_flipping is None:
        # The search climbed without ever flipping; one last test at the
        # ceiling decides vulnerability.
        if has_flips(maximum):
            return maximum
        return None
    return lowest_flipping
