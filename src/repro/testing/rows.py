"""Tested-row sampling.

The paper hammers the first, middle and last 8 K rows of a bank
(Section 4.2, following Kim et al. 2014); the active-time analysis uses
1 K rows per region (Section 6).  This module reproduces that selection at
configurable scale and keeps victims away from bank edges, where a
double-sided aggressor pair does not exist.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.dram.geometry import Geometry
from repro.errors import ConfigError

#: Margin from the bank edge: double-sided hammering needs both physical
#: neighbors, and the fault model couples up to distance 2.
EDGE_MARGIN = 3

REGIONS: Tuple[str, ...] = ("first", "middle", "last")


def standard_row_sample(geometry: Geometry, rows_per_region: int,
                        regions: Sequence[str] = REGIONS,
                        stride: int = 1) -> List[int]:
    """Victim rows in the paper's first/middle/last regions of a bank.

    Args:
        geometry: module geometry (bank row count).
        rows_per_region: victims per region.
        regions: subset of ``("first", "middle", "last")``.
        stride: spacing between victims inside a region; strides above 1
            thin the sample while preserving its spatial spread.
    """
    if rows_per_region <= 0:
        raise ConfigError("rows_per_region must be positive")
    if stride <= 0:
        raise ConfigError("stride must be positive")
    total_rows = geometry.rows_per_bank
    usable = total_rows - 2 * EDGE_MARGIN
    span = rows_per_region * stride
    if span > usable // max(1, len(regions)) and span > usable:
        raise ConfigError(
            f"{rows_per_region} rows x stride {stride} does not fit a bank "
            f"of {total_rows} rows")

    starts = {
        "first": EDGE_MARGIN,
        "middle": max(EDGE_MARGIN, (total_rows - span) // 2),
        "last": max(EDGE_MARGIN, total_rows - EDGE_MARGIN - span),
    }
    rows: List[int] = []
    seen = set()
    for region in regions:
        if region not in starts:
            raise ConfigError(
                f"unknown region {region!r}; choose from {REGIONS}")
        start = starts[region]
        for i in range(rows_per_region):
            row = start + i * stride
            if row >= total_rows - EDGE_MARGIN:
                break
            if row not in seen:
                seen.add(row)
                rows.append(row)
    return rows
