"""Discrete PID controller for the heater duty cycle."""

from __future__ import annotations

from repro.errors import ConfigError


class PIDController:
    """Classic positional PID with output clamping and anti-windup.

    Output is the heater duty cycle in [0, 1].
    """

    def __init__(self, kp: float = 0.12, ki: float = 0.02, kd: float = 0.08,
                 output_min: float = 0.0, output_max: float = 1.0) -> None:
        if output_min >= output_max:
            raise ConfigError("output_min must be below output_max")
        self.kp, self.ki, self.kd = kp, ki, kd
        self.output_min, self.output_max = output_min, output_max
        self._integral = 0.0
        self._previous_error = None

    def reset(self) -> None:
        self._integral = 0.0
        self._previous_error = None

    def update(self, setpoint: float, measurement: float, dt_s: float) -> float:
        """One control step; returns the clamped heater duty cycle."""
        if dt_s <= 0:
            raise ConfigError("dt must be positive")
        error = setpoint - measurement
        derivative = 0.0
        if self._previous_error is not None:
            derivative = (error - self._previous_error) / dt_s
        self._previous_error = error

        candidate_integral = self._integral + error * dt_s
        output = (self.kp * error
                  + self.ki * candidate_integral
                  + self.kd * derivative)
        if self.output_min <= output <= self.output_max:
            self._integral = candidate_integral  # anti-windup: only when unsaturated
            return output
        # Saturated: hold the integral and clamp.
        output = (self.kp * error
                  + self.ki * self._integral
                  + self.kd * derivative)
        return min(max(output, self.output_min), self.output_max)
