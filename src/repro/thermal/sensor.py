"""Thermocouple model: the sensor placed on the DRAM package.

Adds small Gaussian measurement noise and a fixed quantization, matching
the JESD51-1-style electrical test method the paper follows.  The paper's
infrastructure achieves a worst-case measurement error of +/-0.1 degC.

When a :class:`~repro.faults.plan.FaultPlan` is attached (``faults``), the
sensor can drop out mid-read — the open-thermocouple failure real rigs see
after weeks in a hot chamber — surfacing as a retryable
:class:`~repro.errors.SubstrateFault`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SubstrateFault
from repro.rng import SeedSequenceTree


class Thermocouple:
    """A noisy, quantized temperature sensor."""

    def __init__(self, tree: SeedSequenceTree, noise_sd_c: float = 0.03,
                 resolution_c: float = 0.01, faults=None) -> None:
        self._gen = tree.generator("thermocouple")
        self.noise_sd_c = noise_sd_c
        self.resolution_c = resolution_c
        self.faults = faults
        self._reads = 0

    def read(self, true_temperature_c: float) -> float:
        """One temperature sample with sensor noise and quantization."""
        self._reads += 1
        if self.faults is not None:
            event = self.faults.roll("thermal.sensor", self._reads)
            if event is not None:
                raise SubstrateFault(
                    f"thermocouple dropout (open circuit) on read "
                    f"#{self._reads}", site="thermal.sensor", kind=event.kind)
        noisy = true_temperature_c + self._gen.normal(0.0, self.noise_sd_c)
        if self.resolution_c > 0:
            noisy = round(noisy / self.resolution_c) * self.resolution_c
        return float(noisy)

    def read_averaged(self, true_temperature_c: float, samples: int = 4) -> float:
        """Average of several samples (the controller's filtered reading)."""
        values = [self.read(true_temperature_c) for _ in range(max(1, samples))]
        return float(np.mean(values))
