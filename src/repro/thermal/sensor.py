"""Thermocouple model: the sensor placed on the DRAM package.

Adds small Gaussian measurement noise and a fixed quantization, matching
the JESD51-1-style electrical test method the paper follows.  The paper's
infrastructure achieves a worst-case measurement error of +/-0.1 degC.
"""

from __future__ import annotations

import numpy as np

from repro.rng import SeedSequenceTree


class Thermocouple:
    """A noisy, quantized temperature sensor."""

    def __init__(self, tree: SeedSequenceTree, noise_sd_c: float = 0.03,
                 resolution_c: float = 0.01) -> None:
        self._gen = tree.generator("thermocouple")
        self.noise_sd_c = noise_sd_c
        self.resolution_c = resolution_c

    def read(self, true_temperature_c: float) -> float:
        """One temperature sample with sensor noise and quantization."""
        noisy = true_temperature_c + self._gen.normal(0.0, self.noise_sd_c)
        if self.resolution_c > 0:
            noisy = round(noisy / self.resolution_c) * self.resolution_c
        return float(noisy)

    def read_averaged(self, true_temperature_c: float, samples: int = 4) -> float:
        """Average of several samples (the controller's filtered reading)."""
        values = [self.read(true_temperature_c) for _ in range(max(1, samples))]
        return float(np.mean(values))
