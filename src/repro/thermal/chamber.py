"""The temperature controller facade (the paper's Maxwell FT200 analog).

Drives the heater pads with a PID loop against thermocouple readings until
the module settles within the tolerance band (+/-0.1 degC in the paper's
infrastructure), then reports the achieved temperature.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SubstrateFault, ThermalError
from repro.rng import SeedSequenceTree
from repro.thermal.pid import PIDController
from repro.thermal.plant import ThermalPlant
from repro.thermal.sensor import Thermocouple

#: The paper's measurement error bound (Section 4.1).
TOLERANCE_C = 0.1


class TemperatureController:
    """Closed-loop chamber: plant + sensor + PID + settling logic."""

    def __init__(self, tree: SeedSequenceTree,
                 plant: Optional[ThermalPlant] = None,
                 sensor: Optional[Thermocouple] = None,
                 pid: Optional[PIDController] = None,
                 tolerance_c: float = TOLERANCE_C,
                 control_period_s: float = 0.25,
                 required_stable_steps: int = 12,
                 timeout_s: float = 1800.0,
                 faults=None) -> None:
        self.faults = faults
        self.plant = plant if plant is not None else ThermalPlant()
        self.sensor = sensor if sensor is not None \
            else Thermocouple(tree, faults=faults)
        self.pid = pid if pid is not None else PIDController()
        self.tolerance_c = tolerance_c
        self.control_period_s = control_period_s
        self.required_stable_steps = required_stable_steps
        self.timeout_s = timeout_s
        self.setpoint_c: Optional[float] = None
        self.elapsed_s = 0.0
        self._settles = 0

    # ------------------------------------------------------------------
    def set_reference(self, setpoint_c: float) -> None:
        """Program a new reference temperature (the host's RS485 write)."""
        if not self.plant.ambient_c <= setpoint_c <= self.plant.max_reachable_c:
            raise ThermalError(
                f"setpoint {setpoint_c} degC outside reachable range "
                f"[{self.plant.ambient_c}, {self.plant.max_reachable_c:.1f}]")
        self.setpoint_c = float(setpoint_c)
        self.pid.reset()

    def step(self) -> float:
        """One control period; returns the current sensor reading."""
        if self.setpoint_c is None:
            raise ThermalError("no reference temperature programmed")
        reading = self.sensor.read_averaged(self.plant.temperature_c)
        duty = self.pid.update(self.setpoint_c, reading, self.control_period_s)
        self.plant.step(duty, self.control_period_s)
        self.elapsed_s += self.control_period_s
        return reading

    def settle(self, setpoint_c: float) -> float:
        """Drive to ``setpoint_c`` and hold until stable; returns the reading.

        "Stable" means ``required_stable_steps`` consecutive readings within
        the tolerance band.  Raises :class:`ThermalError` on timeout.

        With a fault plan attached, a settle attempt can be injected with a
        ``timeout`` (the chamber hangs; raised as a retryable
        :class:`SubstrateFault`) or an ``overshoot`` (the loop reports
        convergence at a temperature outside the tolerance band, which the
        session-level validation then rejects).
        """
        self._settles += 1
        overshoot_c = 0.0
        if self.faults is not None:
            event = self.faults.roll("thermal.settle", self._settles,
                                     float(setpoint_c))
            if event is not None and event.kind == "timeout":
                raise SubstrateFault(
                    f"chamber hung while settling at {setpoint_c} degC "
                    f"(injected timeout, attempt #{self._settles})",
                    site="thermal.settle", kind="timeout")
            if event is not None and event.kind == "overshoot":
                overshoot_c = event.magnitude if event.magnitude > 0 \
                    else 4.0 * self.tolerance_c
        self.set_reference(setpoint_c)
        deadline = self.elapsed_s + self.timeout_s
        stable = 0
        reading = self.sensor.read_averaged(self.plant.temperature_c)
        while self.elapsed_s < deadline:
            reading = self.step()
            if abs(reading - setpoint_c) <= self.tolerance_c:
                stable += 1
                if stable >= self.required_stable_steps:
                    return reading + overshoot_c
            else:
                stable = 0
        raise ThermalError(
            f"failed to settle at {setpoint_c} degC within "
            f"{self.timeout_s:.0f} s (last reading {reading:.2f} degC)")

    def report(self) -> float:
        """Instantaneous temperature report (the RS485 read-back)."""
        return self.sensor.read(self.plant.temperature_c)
