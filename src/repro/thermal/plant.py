"""Lumped-RC thermal model of a DRAM module clamped in heater pads.

The package temperature follows a first-order response::

    C * dT/dt = P_heater - k * (T - T_ambient)

The paper notes (citing Micron TN-00-08) that package and die temperatures
are strongly correlated, so a single lumped node is adequate for the
characterization's purposes.
"""

from __future__ import annotations

from repro.errors import ConfigError


class ThermalPlant:
    """First-order thermal plant: one temperature node, one heater input."""

    def __init__(self, ambient_c: float = 25.0,
                 heat_capacity_j_per_k: float = 18.0,
                 loss_w_per_k: float = 0.9,
                 max_heater_w: float = 60.0,
                 initial_c: float = None) -> None:
        if heat_capacity_j_per_k <= 0 or loss_w_per_k <= 0:
            raise ConfigError("thermal constants must be positive")
        if max_heater_w <= 0:
            raise ConfigError("heater power must be positive")
        self.ambient_c = ambient_c
        self.heat_capacity = heat_capacity_j_per_k
        self.loss = loss_w_per_k
        self.max_heater_w = max_heater_w
        self.temperature_c = ambient_c if initial_c is None else initial_c

    @property
    def max_reachable_c(self) -> float:
        """Steady-state temperature at full heater power."""
        return self.ambient_c + self.max_heater_w / self.loss

    def step(self, heater_fraction: float, dt_s: float) -> float:
        """Advance the plant ``dt_s`` seconds with the heater at a duty cycle.

        ``heater_fraction`` is clamped to [0, 1].  Returns the new package
        temperature.
        """
        if dt_s <= 0:
            raise ConfigError("time step must be positive")
        duty = min(max(heater_fraction, 0.0), 1.0)
        power = duty * self.max_heater_w
        dTdt = (power - self.loss * (self.temperature_c - self.ambient_c)) \
            / self.heat_capacity
        self.temperature_c += dTdt * dt_s
        return self.temperature_c
