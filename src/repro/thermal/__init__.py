"""Temperature-control substrate.

Models the paper's setup (Section 4.1, Fig. 2): silicone heater pads pressed
against the module, a thermocouple on the chip package, and a Maxwell
FT200-style closed-loop PID controller that keeps the chip within
+/-0.1 degC of the reference temperature.
"""

from repro.thermal.plant import ThermalPlant
from repro.thermal.sensor import Thermocouple
from repro.thermal.pid import PIDController
from repro.thermal.chamber import TemperatureController

__all__ = [
    "ThermalPlant",
    "Thermocouple",
    "PIDController",
    "TemperatureController",
]
