"""Wiring a :class:`~repro.faults.plan.FaultPlan` into substrate objects.

The substrate classes each expose an optional ``faults`` attribute (``None``
by default — the zero-overhead happy path).  These helpers attach one plan
consistently across a whole rig so every component draws from the same
seeded schedule and records into the same log.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultPlan


def attach_thermal(chamber, plan: Optional[FaultPlan]) -> None:
    """Arm a :class:`~repro.thermal.chamber.TemperatureController`.

    Covers both the settle loop (timeout / overshoot) and its thermocouple
    (dropout).
    """
    chamber.faults = plan
    if getattr(chamber, "sensor", None) is not None:
        chamber.sensor.faults = plan


def attach_softmc(session, plan: Optional[FaultPlan]) -> None:
    """Arm a :class:`~repro.softmc.session.SoftMCSession` and its controller.

    Covers session resets, corrupted read-backs and sporadic timing /
    protocol violations; if the session drives a chamber, that is armed
    too.
    """
    session.faults = plan
    session.controller.faults = plan
    if getattr(session, "chamber", None) is not None:
        attach_thermal(session.chamber, plan)


def detach(obj) -> None:
    """Disarm a previously-attached component tree."""
    if hasattr(obj, "controller"):
        attach_softmc(obj, None)
    elif hasattr(obj, "sensor"):
        attach_thermal(obj, None)
    else:
        obj.faults = None
