"""Wiring a :class:`~repro.faults.plan.FaultPlan` into substrate objects.

The substrate classes each expose an optional ``faults`` attribute (``None``
by default — the zero-overhead happy path).  These helpers attach one plan
consistently across a whole rig so every component draws from the same
seeded schedule and records into the same log.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.faults.plan import FaultEvent, FaultPlan

#: Exit code a worker process dies with under an injected ``crash`` — a
#: recognizable signature in supervisor logs, distinct from real errors.
WORKER_CRASH_EXIT_CODE = 73

#: How long an injected ``hang`` sleeps when the spec gives no magnitude:
#: far beyond any sane module deadline, i.e. "forever" for supervision
#: purposes while still bounded if nothing ever kills the process.
DEFAULT_HANG_S = 3600.0


def attach_thermal(chamber, plan: Optional[FaultPlan]) -> None:
    """Arm a :class:`~repro.thermal.chamber.TemperatureController`.

    Covers both the settle loop (timeout / overshoot) and its thermocouple
    (dropout).
    """
    chamber.faults = plan
    if getattr(chamber, "sensor", None) is not None:
        chamber.sensor.faults = plan


def attach_softmc(session, plan: Optional[FaultPlan]) -> None:
    """Arm a :class:`~repro.softmc.session.SoftMCSession` and its controller.

    Covers session resets, corrupted read-backs and sporadic timing /
    protocol violations; if the session drives a chamber, that is armed
    too.
    """
    session.faults = plan
    session.controller.faults = plan
    if getattr(session, "chamber", None) is not None:
        attach_thermal(session.chamber, plan)


def perform_worker_fault(event: FaultEvent, clock=None) -> None:
    """Execute a fired ``campaign.worker`` fault inside a worker process.

    ``crash`` kills the process immediately via ``os._exit`` — no cleanup,
    no exception, exactly like a segfault or OOM kill — which breaks the
    parent's process pool and exercises its respawn/requeue path.
    ``hang`` blocks for ``magnitude`` seconds (:data:`DEFAULT_HANG_S` when
    unset) so the parent's per-module deadline is what ends it.
    """
    if event.kind == "crash":
        os._exit(WORKER_CRASH_EXIT_CODE)
    if event.kind == "hang":
        if clock is None:
            from repro.runner.retry import WallClock
            clock = WallClock()
        clock.sleep(event.magnitude if event.magnitude > 0.0
                    else DEFAULT_HANG_S)


def detach(obj) -> None:
    """Disarm a previously-attached component tree."""
    if hasattr(obj, "controller"):
        attach_softmc(obj, None)
    elif hasattr(obj, "sensor"):
        attach_thermal(obj, None)
    else:
        obj.faults = None
