"""Fault injection: seeded, structured failures for the simulated rig.

See :mod:`repro.faults.plan` for the fault taxonomy and determinism
guarantees, and :mod:`repro.faults.injector` for attaching a plan to the
thermal and SoftMC substrates (and for executing worker-process faults).
"""

from repro.faults.injector import (
    DEFAULT_HANG_S,
    WORKER_CRASH_EXIT_CODE,
    attach_softmc,
    attach_thermal,
    detach,
    perform_worker_fault,
)
from repro.faults.plan import (
    SITES,
    FaultEvent,
    FaultLog,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
)

__all__ = [
    "DEFAULT_HANG_S",
    "SITES",
    "WORKER_CRASH_EXIT_CODE",
    "FaultEvent",
    "FaultLog",
    "FaultPlan",
    "FaultSpec",
    "attach_softmc",
    "attach_thermal",
    "detach",
    "parse_fault_plan",
    "perform_worker_fault",
]
