"""Fault injection: seeded, structured failures for the simulated rig.

See :mod:`repro.faults.plan` for the fault taxonomy and determinism
guarantees, and :mod:`repro.faults.injector` for attaching a plan to the
thermal and SoftMC substrates.
"""

from repro.faults.injector import attach_softmc, attach_thermal, detach
from repro.faults.plan import (
    SITES,
    FaultEvent,
    FaultLog,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
)

__all__ = [
    "SITES",
    "FaultEvent",
    "FaultLog",
    "FaultPlan",
    "FaultSpec",
    "attach_softmc",
    "attach_thermal",
    "detach",
    "parse_fault_plan",
]
