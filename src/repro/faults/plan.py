"""Seeded fault plans: *when* and *how* the simulated rig misbehaves.

The real infrastructure behind the paper — FPGA SoftMC boards, a Maxwell
FT200 thermal chamber, thermocouples taped to DIMMs — drifts, hangs and
drops sessions over the weeks a 272-chip characterization takes.  This
module decides deterministically (via :class:`repro.rng.SeedSequenceTree`)
at which *opportunities* those failures occur, so a fault-injected campaign
is exactly reproducible from its seed.

A :class:`FaultPlan` holds one or more :class:`FaultSpec` entries, each
bound to an injection *site* (see :data:`SITES`).  Substrate components and
the campaign runner call :meth:`FaultPlan.roll` at their hook points; a
returned :class:`FaultEvent` means "misbehave now", and every fired event
is recorded in a structured :class:`FaultLog`.

Determinism has two layers:

* the *decision* for a given ``(site, kind, key)`` is a pure function of
  the plan seed — independent of call order, so a resumed campaign that
  skips completed modules sees identical faults for the remaining ones;
* the ``after`` / ``max_fires`` windows count opportunities per spec, which
  *is* call-order dependent and intended for tests and kill-switches
  ("crash exactly once, after the fifth unit").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.rng import DEFAULT_SEED, PathPart, SeedSequenceTree

#: Injection sites and the failure kinds each supports.  The first kind is
#: the default used by the ``site=rate`` shorthand of :func:`parse_fault_plan`.
SITES: Dict[str, Tuple[str, ...]] = {
    # Thermal chamber: settle loop hangs past its timeout, or reports a
    # "settled" temperature that overshot the tolerance band.
    "thermal.settle": ("timeout", "overshoot"),
    # Thermocouple opens (dropout) mid-read.
    "thermal.sensor": ("dropout",),
    # Host <-> FPGA session drops and resets mid-hammer.
    "softmc.session": ("reset",),
    # A read-back burst comes back corrupted on the bus.
    "softmc.readback": ("corrupt",),
    # The instruction sequencer sporadically violates a timing constraint.
    "softmc.timing": ("violation",),
    # ... or issues a command illegal in the current bank state.
    "softmc.protocol": ("illegal",),
    # Campaign-level unit-of-work faults: a retryable abort, or a fatal
    # "crash" that the retry layer refuses to absorb (simulated power cut).
    "campaign.unit": ("abort", "crash"),
    # Worker-process faults for chaos-testing the parallel supervisor: the
    # worker process dies outright (SIGKILL-style, breaking its pool) or
    # hangs for ``magnitude`` seconds (default: effectively forever).  Only
    # rolled inside worker processes, keyed by (module_id, dispatch), so a
    # requeued module re-rolls and the campaign converges.
    "campaign.worker": ("crash", "hang"),
    # Zero-copy data-plane faults: "crash" kills the worker *after* it
    # published its result into a shared-memory segment but before
    # reporting it — the parent must requeue the module and sweep the
    # orphaned segment.  "exhausted" simulates /dev/shm running out of
    # space at publish time: the worker must fall back to the pickled
    # data plane in-band instead of dying.  Rolled inside workers, keyed
    # by (module_id, dispatch) like campaign.worker so requeued
    # dispatches re-roll.
    "campaign.shm": ("crash", "exhausted"),
    # Checkpoint publish fails mid-write with a full disk (ENOSPC): the
    # temp file is left torn and the raise must not leak it nor journal
    # an unverifiable entry.  Keyed by (module_id, publish-count).
    "checkpoint.publish": ("enospc",),
    # Service-level faults for chaos-testing `deeprh serve`: an incoming
    # connection is dropped before its first request is read ("drop") or
    # the accept path hits a transient descriptor-exhaustion error that
    # the loop must survive ("emfile"); an accepted request is rejected
    # (429-style) or aborted mid-run; or one streamed response write
    # fails like a closed peer socket.
    "serve.accept": ("drop", "emfile"),
    "serve.request": ("reject", "abort"),
    "serve.stream": ("drop",),
    # Resource-governor fault: one assessment observes synthetic RSS
    # pressure above budget, forcing the degradation ladder to climb one
    # rung.  Rolled in the parent (or service) process only, keyed by the
    # assessment counter.
    "governor.rss": ("pressure",),
}


@dataclass(frozen=True)
class FaultSpec:
    """One configured failure mode at one injection site.

    ``rate`` is the per-opportunity firing probability.  ``match``
    restricts firing to opportunities whose key contains the substring
    (useful to target one module).  ``after`` arms the spec only from the
    ``after+1``-th matching opportunity on, and ``max_fires`` caps the
    total number of fires (``None`` = unlimited).  ``magnitude`` is
    kind-specific (e.g. the overshoot in degC).
    """

    site: str
    kind: str = ""
    rate: float = 1.0
    magnitude: float = 0.0
    match: str = ""
    after: int = 0
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigError(
                f"unknown fault site {self.site!r}; choose from {sorted(SITES)}")
        kind = self.kind or SITES[self.site][0]
        object.__setattr__(self, "kind", kind)
        if kind not in SITES[self.site]:
            raise ConfigError(
                f"site {self.site!r} has no fault kind {kind!r}; "
                f"choose from {SITES[self.site]}")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.after < 0:
            raise ConfigError("after must be >= 0")
        if self.max_fires is not None and self.max_fires <= 0:
            raise ConfigError("max_fires must be positive (or None)")


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault: what happened, where, and at which opportunity."""

    site: str
    kind: str
    key: Tuple[PathPart, ...]
    magnitude: float = 0.0

    @property
    def key_str(self) -> str:
        return "/".join(str(part) for part in self.key)

    def __str__(self) -> str:
        return f"{self.site}:{self.kind}@{self.key_str}"


class FaultLog:
    """Structured, append-only record of every injected fault."""

    def __init__(self) -> None:
        self.events: List[FaultEvent] = []

    def record(self, event: FaultEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def count(self, site: Optional[str] = None,
              kind: Optional[str] = None) -> int:
        return sum(1 for e in self.events
                   if (site is None or e.site == site)
                   and (kind is None or e.kind == kind))

    def by_site_kind(self) -> Dict[str, int]:
        """``{"site/kind": fires}`` histogram for reports."""
        histogram: Dict[str, int] = {}
        for event in self.events:
            label = f"{event.site}/{event.kind}"
            histogram[label] = histogram.get(label, 0) + 1
        return dict(sorted(histogram.items()))

    def to_dicts(self) -> List[Dict[str, object]]:
        return [
            {"site": e.site, "kind": e.kind, "key": list(e.key),
             "magnitude": e.magnitude}
            for e in self.events
        ]

    def render(self) -> str:
        if not self.events:
            return "no faults injected"
        lines = [f"{len(self.events)} fault(s) injected:"]
        for label, fires in self.by_site_kind().items():
            lines.append(f"  {label}: {fires}")
        return "\n".join(lines)


class _SpecState:
    __slots__ = ("opportunities", "fires")

    def __init__(self) -> None:
        self.opportunities = 0
        self.fires = 0


class FaultPlan:
    """Deterministic schedule of substrate faults for one campaign."""

    def __init__(self, seed: int = DEFAULT_SEED,
                 specs: Sequence[FaultSpec] = (),
                 log: Optional[FaultLog] = None) -> None:
        self.seed = int(seed)
        self.tree = SeedSequenceTree(self.seed, "faults")
        self.specs = tuple(specs)
        self.log = log if log is not None else FaultLog()
        self._by_site: Dict[str, List[Tuple[int, FaultSpec]]] = {}
        for index, spec in enumerate(self.specs):
            self._by_site.setdefault(spec.site, []).append((index, spec))
        self._state = [_SpecState() for _ in self.specs]

    # ------------------------------------------------------------------
    def roll(self, site: str, *key: PathPart) -> Optional[FaultEvent]:
        """One opportunity at ``site``; returns the fault to inject, if any.

        The random decision depends only on ``(seed, site, kind, key)``, so
        callers keying opportunities structurally (unit id, attempt number,
        per-component counters) get order-independent, resumable plans.
        """
        specs = self._by_site.get(site)
        if not specs:
            return None
        key_str = "/".join(str(part) for part in key)
        for index, spec in specs:
            if spec.match and spec.match not in key_str:
                continue
            state = self._state[index]
            state.opportunities += 1
            if state.opportunities <= spec.after:
                continue
            if spec.max_fires is not None and state.fires >= spec.max_fires:
                continue
            if spec.rate < 1.0:
                gen = self.tree.generator(site, spec.kind, *key)
                if gen.random() >= spec.rate:
                    continue
            state.fires += 1
            event = FaultEvent(site=site, kind=spec.kind, key=tuple(key),
                               magnitude=spec.magnitude)
            self.log.record(event)
            return event
        return None

    def fires(self, site: Optional[str] = None) -> int:
        """Total faults fired so far (optionally at one site)."""
        return self.log.count(site=site)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultPlan(seed={self.seed}, specs={len(self.specs)}, "
                f"fired={len(self.log)})")


def parse_fault_plan(text: str, seed: int = DEFAULT_SEED) -> FaultPlan:
    """Build a plan from a compact CLI spec.

    Comma-separated ``site[:kind]=rate[@magnitude]`` tokens, e.g.::

        campaign.unit=0.1,thermal.settle:overshoot=0.25
        campaign.worker:hang=0.05@30

    Omitting ``kind`` selects the site's default (first) kind; the
    optional ``@magnitude`` is kind-specific (overshoot in degC, hang
    duration in seconds).
    """
    specs: List[FaultSpec] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ConfigError(
                f"bad fault token {token!r}; expected "
                "site[:kind]=rate[@magnitude]")
        name, _, value_text = token.partition("=")
        site, _, kind = name.strip().partition(":")
        rate_text, _, magnitude_text = value_text.partition("@")
        try:
            rate = float(rate_text)
            magnitude = float(magnitude_text) if magnitude_text else 0.0
        except ValueError:
            raise ConfigError(
                f"bad fault rate/magnitude {value_text!r} in token "
                f"{token!r}") from None
        specs.append(FaultSpec(site=site, kind=kind.strip(), rate=rate,
                               magnitude=magnitude))
    if not specs:
        raise ConfigError(f"fault plan spec {text!r} names no faults")
    return FaultPlan(seed=seed, specs=specs)
