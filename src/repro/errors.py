"""Exception hierarchy for the deeprh reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the package with a single ``except`` clause
while still being able to discriminate specific failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class GeometryError(ReproError):
    """An address or dimension is outside the device geometry."""


class TimingViolation(ReproError):
    """A DRAM command violates a minimum JEDEC timing constraint.

    The SoftMC substrate deliberately *allows* relaxing some timings upward
    (e.g. holding a row open longer than ``tRAS``); this exception is only
    raised for commands issued *too early*, which a real DRAM device would
    not service reliably.
    """

    def __init__(self, message: str, parameter: str = "", required_ns: float = 0.0,
                 actual_ns: float = 0.0) -> None:
        super().__init__(message)
        self.parameter = parameter
        self.required_ns = required_ns
        self.actual_ns = actual_ns


class ProtocolError(ReproError):
    """A DRAM command is illegal in the current bank state.

    Examples: activating a bank that already has an open row, or reading
    from a precharged bank.
    """


class ThermalError(ReproError):
    """The thermal chamber could not reach or hold a requested temperature."""


class ConfigError(ReproError):
    """An experiment or model configuration is inconsistent."""


class MappingError(ReproError):
    """A logical/physical row translation failed or is not invertible."""


class DefenseError(ReproError):
    """A RowHammer defense mechanism was configured or driven incorrectly."""


class SubstrateFault(ReproError):
    """The testing *infrastructure* (not the DRAM physics) misbehaved.

    Real characterization rigs drift, hang and drop sessions: a thermal
    chamber misses its settling window, a thermocouple opens, the SoftMC
    session resets mid-sweep.  The fault-injection layer raises this class
    (or corrupts data in-band) to reproduce those failure modes; the
    campaign runner treats it as retryable.

    ``site`` names the injection point (e.g. ``"thermal.settle"``),
    ``kind`` the failure mode at that site (e.g. ``"timeout"``), and
    ``unit`` the unit-of-work identifier during which it fired (empty when
    raised below the campaign layer).
    """

    def __init__(self, message: str, site: str = "", kind: str = "",
                 unit: str = "") -> None:
        super().__init__(message)
        self.site = site
        self.kind = kind
        self.unit = unit


class RetryExhaustedError(ReproError):
    """A unit of work kept failing after its retry budget was spent.

    Carries the unit-of-work id, how many attempts were made, and the last
    underlying exception (``last_cause``) so the campaign runner can
    quarantine the offending module with a meaningful degradation report.
    """

    def __init__(self, message: str, unit: str = "", attempts: int = 0,
                 last_cause: Exception = None) -> None:
        super().__init__(message)
        self.unit = unit
        self.attempts = attempts
        self.last_cause = last_cause


class WorkerLostError(ReproError):
    """A parallel campaign worker died or hung past its requeue budget.

    The supervisor requeues a module whose worker process crashed
    (``BrokenProcessPool``) or blew its wall-clock deadline; when the
    bounded requeue budget is spent the module is given up with this
    error, which the runner converts into a quarantine record exactly
    like a :class:`RetryExhaustedError` from the serial path.
    """

    def __init__(self, message: str, module_id: str = "",
                 dispatches: int = 0, cause: str = "") -> None:
        super().__init__(message)
        self.module_id = module_id
        self.dispatches = dispatches
        self.cause = cause


class CampaignCancelled(ReproError):
    """A campaign was cancelled cooperatively before it completed.

    Raised at unit/module boundaries when a :class:`~repro.runner.cancel.
    CancelToken` is set — by a per-request deadline, an explicit client
    cancel, or a draining service.  Modules checkpointed before the
    cancellation remain on disk and verified, so a cancelled campaign with
    a checkpoint directory is always resumable.
    """

    def __init__(self, message: str, reason: str = "") -> None:
        super().__init__(message)
        self.reason = reason


class CampaignParked(ReproError):
    """The resource governor parked a campaign instead of letting it crash.

    The final rung of the degradation ladder: completed modules are
    checkpointed, a ``parked.json`` resume manifest is published next to
    them, and the run stops cleanly.  Re-running the same campaign with
    ``--resume`` (once pressure clears) picks up the remaining modules
    and produces byte-identical results.
    """

    def __init__(self, message: str, checkpoint_dir: str = "",
                 completed: int = 0, remaining: int = 0,
                 reason: str = "") -> None:
        super().__init__(message)
        self.checkpoint_dir = checkpoint_dir
        self.completed = completed
        self.remaining = remaining
        self.reason = reason


class CheckpointCorruptionError(ReproError):
    """A checkpoint file failed its integrity check (sha256/length).

    Raised by :meth:`~repro.runner.checkpoint.CheckpointStore.load` when a
    module file's bytes do not match its journal entry, and collected by
    the resume path which quarantines the bad file and re-runs the module
    instead of crashing or silently merging torn state.
    """

    def __init__(self, message: str, path: str = "",
                 module_id: str = "") -> None:
        super().__init__(message)
        self.path = path
        self.module_id = module_id
