"""Physical-address to DRAM-coordinate translation.

Memory controllers hash physical-address bits into bank indices (to spread
row-buffer conflicts) and slice the remaining bits into row and column.
We model the widely documented XOR-pair scheme: bank bit ``k`` is the XOR
of two physical-address bits, one low (column-adjacent) and one inside the
row field — which is exactly the structure DRAMA recovered from Intel
controllers.

The mapping is bijective on the modeled address range and invertible in
both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class DramAddress:
    """One DRAM coordinate triple (single channel / rank modeled)."""

    bank: int
    row: int
    col: int


@dataclass(frozen=True)
class SystemAddressMapping:
    """XOR-hashed bank mapping over a physical address space.

    Physical address layout (bit indices, LSB = 0):

    * ``[0, col_shift)``                 — byte-in-column (burst offset),
    * ``[col_shift, col_shift+col_bits)`` — column,
    * ``[bank_shift, bank_shift+bank_bits)`` — the *low* halves of the
      bank hash,
    * ``[row_shift, row_shift+row_bits)`` — row; the first ``bank_bits``
      row bits double as the *high* halves of the bank hash:
      ``bank_k = PA[bank_shift+k] XOR PA[row_shift+k]``.
    """

    col_bits: int = 7
    bank_bits: int = 3
    row_bits: int = 14
    col_shift: int = 3

    def __post_init__(self) -> None:
        if min(self.col_bits, self.bank_bits, self.row_bits) <= 0:
            raise ConfigError("all field widths must be positive")
        if self.bank_bits > self.row_bits:
            raise ConfigError("bank hash needs one row bit per bank bit")

    # ------------------------------------------------------------------
    @property
    def bank_shift(self) -> int:
        return self.col_shift + self.col_bits

    @property
    def row_shift(self) -> int:
        return self.bank_shift + self.bank_bits

    @property
    def address_bits(self) -> int:
        return self.row_shift + self.row_bits

    @property
    def banks(self) -> int:
        return 1 << self.bank_bits

    @property
    def rows(self) -> int:
        return 1 << self.row_bits

    @property
    def cols(self) -> int:
        return 1 << self.col_bits

    @property
    def frame_bytes(self) -> int:
        """Bytes per row-sized frame (the massaging granularity)."""
        return 1 << (self.col_shift + self.col_bits)

    def bank_masks(self) -> Tuple[int, ...]:
        """The XOR mask of physical-address bits behind each bank bit."""
        return tuple(
            (1 << (self.bank_shift + k)) | (1 << (self.row_shift + k))
            for k in range(self.bank_bits)
        )

    # ------------------------------------------------------------------
    def _check_pa(self, physical_address: int) -> None:
        if not 0 <= physical_address < (1 << self.address_bits):
            raise ConfigError(
                f"physical address {physical_address:#x} outside the "
                f"{self.address_bits}-bit modeled space")

    def decompose(self, physical_address: int) -> DramAddress:
        """Physical address -> DRAM coordinates."""
        self._check_pa(physical_address)
        col = (physical_address >> self.col_shift) & (self.cols - 1)
        row = (physical_address >> self.row_shift) & (self.rows - 1)
        bank = 0
        for k, mask in enumerate(self.bank_masks()):
            bits = physical_address & mask
            bank |= (bin(bits).count("1") & 1) << k
        return DramAddress(bank=bank, row=row, col=col)

    def compose(self, address: DramAddress) -> int:
        """DRAM coordinates -> the canonical physical address."""
        if not 0 <= address.bank < self.banks:
            raise ConfigError(f"bank {address.bank} out of range")
        if not 0 <= address.row < self.rows:
            raise ConfigError(f"row {address.row} out of range")
        if not 0 <= address.col < self.cols:
            raise ConfigError(f"col {address.col} out of range")
        physical = (address.row << self.row_shift) | \
            (address.col << self.col_shift)
        for k in range(self.bank_bits):
            row_half = (address.row >> k) & 1
            bank_bit = (address.bank >> k) & 1
            low_half = bank_bit ^ row_half
            physical |= low_half << (self.bank_shift + k)
        return physical

    def frame_of(self, physical_address: int) -> int:
        """Frame number (row-granular) containing the address."""
        self._check_pa(physical_address)
        return physical_address >> (self.col_shift + self.col_bits)

    def frame_base(self, frame: int) -> int:
        """First physical address of a frame."""
        base = frame << (self.col_shift + self.col_bits)
        self._check_pa(base)
        return base
