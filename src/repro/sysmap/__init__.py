"""System-level memory mapping: the attacker-side substrate of Section 8.1.

The paper's attack improvements presuppose capabilities demonstrated by
prior work it builds on: knowing how physical addresses map onto DRAM
banks and rows (DRAMA), and steering victim data onto chosen rows
(Flip Feng Shui-style memory massaging — "the attacker can force the
sensitive data to be stored in the DRAM cells that are more vulnerable...
using known techniques").  This package implements those capabilities
against the simulated devices:

* :mod:`repro.sysmap.mapping` — physical-address <-> (bank, row, col)
  translation with XOR-hashed bank bits, as real memory controllers use;
* :mod:`repro.sysmap.timing_channel` — a row-conflict timing oracle and
  the DRAMA-style recovery of the XOR bank functions from latencies alone;
* :mod:`repro.sysmap.massage` — a page-frame allocator model and the
  massaging primitive that lands a victim page on a chosen row.
"""

from repro.sysmap.mapping import DramAddress, SystemAddressMapping
from repro.sysmap.timing_channel import (
    RowConflictOracle,
    recover_bank_masks,
)
from repro.sysmap.massage import MassageOutcome, PageAllocator, massage_victim_onto_row

__all__ = [
    "DramAddress",
    "SystemAddressMapping",
    "RowConflictOracle",
    "recover_bank_masks",
    "PageAllocator",
    "MassageOutcome",
    "massage_victim_onto_row",
]
