"""Memory massaging: landing victim data on an attacker-chosen row.

Models the Flip Feng Shui / page-spraying primitive the paper's Attack
Improvement 1 presupposes: the attacker exhausts the OS page-frame
allocator, then frees exactly the frames that map onto the target DRAM
row; the next allocation the victim makes is served from those frames.

The allocator is a LIFO free-list over row-sized frames — the behaviour
that makes the primitive reliable on real systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.errors import ConfigError
from repro.sysmap.mapping import DramAddress, SystemAddressMapping


class PageAllocator:
    """LIFO free-list allocator over physical frames."""

    def __init__(self, mapping: SystemAddressMapping,
                 total_frames: Optional[int] = None) -> None:
        self.mapping = mapping
        max_frames = 1 << (mapping.bank_bits + mapping.row_bits)
        self.total_frames = total_frames if total_frames is not None \
            else max_frames
        if not 0 < self.total_frames <= max_frames:
            raise ConfigError("total_frames outside the mapped space")
        # LIFO: the most recently freed frame is handed out first.
        self._free: List[int] = list(range(self.total_frames - 1, -1, -1))
        self._owner: Dict[int, str] = {}

    # ------------------------------------------------------------------
    @property
    def free_frames(self) -> int:
        return len(self._free)

    def allocate(self, owner: str) -> int:
        """Allocate one frame; returns the frame number."""
        if not self._free:
            raise ConfigError("out of frames")
        frame = self._free.pop()
        self._owner[frame] = owner
        return frame

    def free(self, frame: int, owner: str) -> None:
        if self._owner.get(frame) != owner:
            raise ConfigError(f"frame {frame} is not owned by {owner!r}")
        del self._owner[frame]
        self._free.append(frame)

    def owner_of(self, frame: int) -> Optional[str]:
        return self._owner.get(frame)

    def frames_owned_by(self, owner: str) -> List[int]:
        return [f for f, o in self._owner.items() if o == owner]


@dataclass(frozen=True)
class MassageOutcome:
    """Result of one massaging campaign."""

    victim_frame: int
    target_bank: int
    target_row: int
    sprayed_frames: int
    freed_frames: int

    @property
    def succeeded(self) -> bool:
        return self.freed_frames > 0


def frames_on_row(mapping: SystemAddressMapping, bank: int,
                  row: int) -> Set[int]:
    """All frame numbers that decompose onto (bank, row)."""
    base = mapping.compose(DramAddress(bank=bank, row=row, col=0))
    return {mapping.frame_of(base)}


def massage_victim_onto_row(allocator: PageAllocator, bank: int, row: int,
                            attacker: str = "attacker",
                            victim: str = "victim") -> MassageOutcome:
    """Steer the victim's next page allocation onto (bank, row).

    1. Spray: the attacker allocates every free frame.
    2. Carve: it frees exactly the frames mapping onto the target row.
    3. The victim's next allocation is served from the carved set (LIFO).
    """
    mapping = allocator.mapping
    targets = frames_on_row(mapping, bank, row)
    in_range_targets = {f for f in targets if f < allocator.total_frames}
    if not in_range_targets:
        raise ConfigError("target row has no frames in the allocator range")

    sprayed = 0
    while allocator.free_frames:
        allocator.allocate(attacker)
        sprayed += 1

    freed = 0
    for frame in sorted(in_range_targets):
        if allocator.owner_of(frame) == attacker:
            allocator.free(frame, attacker)
            freed += 1
    if freed == 0:
        raise ConfigError(
            "the attacker does not own any target-row frame; massage "
            "impossible in this allocator state")

    victim_frame = allocator.allocate(victim)
    return MassageOutcome(
        victim_frame=victim_frame,
        target_bank=bank,
        target_row=row,
        sprayed_frames=sprayed,
        freed_frames=freed,
    )
