"""DRAMA-style recovery of the bank hash from access latencies.

Two addresses in the *same bank but different rows* conflict in the row
buffer: accessing them alternately forces precharge + activate cycles and
is measurably slower than any other address relationship.  DRAMA used this
timing side channel to reverse-engineer Intel's bank hash functions; we
run the same attack against :class:`~repro.sysmap.mapping.SystemAddressMapping`
through a latency oracle built from the JEDEC timings.

Recovery algorithm (single-bit probing):

1. find which single physical-address bit flips change the bank
   (flipping them removes the row conflict with the base address);
2. pair up bank-affecting bits whose *joint* flip restores the conflict —
   those two bits XOR into the same bank bit.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.dram.timing import TimingSet
from repro.errors import ConfigError
from repro.sysmap.mapping import SystemAddressMapping


class RowConflictOracle:
    """Latency of an alternating access pair, as an attacker measures it."""

    def __init__(self, mapping: SystemAddressMapping,
                 timing: TimingSet) -> None:
        self.mapping = mapping
        self.timing = timing
        self.measurements = 0

    def pair_latency_ns(self, pa_a: int, pa_b: int) -> float:
        """Average per-access latency when alternating between two addresses.

        Same bank + same row: row-buffer hits.  Different banks: pipelined
        activations.  Same bank + different row: the row conflict the
        attack keys on (tRP + tRCD on every access).
        """
        self.measurements += 1
        a = self.mapping.decompose(pa_a)
        b = self.mapping.decompose(pa_b)
        timing = self.timing
        base = timing.tCCD + timing.burst_ns
        if a.bank != b.bank:
            return base + timing.tRRD / 2.0
        if a.row == b.row:
            return base
        return base + timing.tRP + timing.tRCD

    def conflicts(self, pa_a: int, pa_b: int) -> bool:
        """Is the pair in the slow (same-bank, different-row) class?"""
        threshold = (self.timing.tCCD + self.timing.burst_ns
                     + self.timing.tRP / 2.0)
        return self.pair_latency_ns(pa_a, pa_b) > threshold


def recover_bank_masks(oracle: RowConflictOracle,
                       base_address: int = 0) -> Tuple[int, ...]:
    """Recover the XOR bank-hash masks from timing alone.

    Returns the masks sorted by their low bit, in the same canonical form
    :meth:`SystemAddressMapping.bank_masks` reports.
    """
    mapping = oracle.mapping
    # A reference pair in conflict with the base: same bank, distant row.
    # Flipping a high row bit (beyond the bank-hash halves) changes the
    # row but never the bank.
    probe_row_bit = mapping.row_shift + mapping.bank_bits
    if probe_row_bit >= mapping.address_bits:
        raise ConfigError("address space too small to probe")
    reference = base_address ^ (1 << probe_row_bit)
    if not oracle.conflicts(base_address, reference):
        raise ConfigError("reference pair does not conflict; bad base")

    # Step 1: single bits whose flip breaks the conflict = bank-affecting.
    bank_bits: List[int] = []
    for bit in range(mapping.address_bits):
        if bit == probe_row_bit:
            continue
        flipped = reference ^ (1 << bit)
        if flipped == base_address:
            continue
        if not oracle.conflicts(base_address, flipped):
            bank_bits.append(bit)

    # Step 2: pair bits whose joint flip restores the conflict.
    masks: List[int] = []
    used = set()
    for i, bit_a in enumerate(bank_bits):
        if bit_a in used:
            continue
        for bit_b in bank_bits[i + 1:]:
            if bit_b in used:
                continue
            flipped = reference ^ (1 << bit_a) ^ (1 << bit_b)
            if oracle.conflicts(base_address, flipped):
                masks.append((1 << bit_a) | (1 << bit_b))
                used.add(bit_a)
                used.add(bit_b)
                break
        else:
            raise ConfigError(
                f"unpaired bank-affecting bit {bit_a}; the hash is not "
                "a two-bit XOR")
    return tuple(sorted(masks))
