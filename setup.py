"""Setup shim: enables `pip install -e . --no-use-pep517` in offline
environments that lack the `wheel` package for PEP 517 editable builds."""
from setuptools import setup

setup()
