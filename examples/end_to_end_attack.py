#!/usr/bin/env python
"""End-to-end informed RowHammer attack, combining every layer.

The full chain behind the paper's Attack Improvement 1:

1. reverse-engineer the memory controller's bank hash from access
   latencies alone (DRAMA-style timing channel),
2. reverse-engineer the DRAM's internal row remapping by single-sided
   hammering (Section 4.2's methodology),
3. profile candidate rows across temperatures and pick the softest
   (row, temperature) operating point,
4. massage the victim's page onto that row through the page allocator,
5. heat the chamber to the chosen temperature and hammer.
"""

from repro import (
    HammerTester,
    SeedSequenceTree,
    SoftMCSession,
    TemperatureController,
    pattern_by_name,
    reverse_engineer_mapping,
    spec_by_id,
    standard_row_sample,
)
from repro.attacks import plan_temperature_aware_attack
from repro.dram.timing import DDR4_2400
from repro.sysmap import (
    PageAllocator,
    RowConflictOracle,
    SystemAddressMapping,
    massage_victim_onto_row,
    recover_bank_masks,
)

BANK = 0


def main() -> None:
    module = spec_by_id("C1").instantiate()
    pattern = pattern_by_name("rowstripe")

    print("[1] Recovering the controller's bank hash from timing...")
    sysmap = SystemAddressMapping(col_bits=7, bank_bits=3, row_bits=14)
    oracle = RowConflictOracle(sysmap, DDR4_2400)
    masks = recover_bank_masks(oracle)
    print(f"    recovered XOR masks {[hex(m) for m in masks]} "
          f"({oracle.measurements} timing measurements)"
          f" — match: {masks == tuple(sorted(sysmap.bank_masks()))}")

    print("[2] Recovering the DRAM-internal row remapping...")
    window = list(range(1024, 1024 + 16))
    inferred = reverse_engineer_mapping(module, BANK, window)
    print(f"    {type(module.mapping).__name__} recovered: "
          f"{inferred.matches(module)}")

    print("[3] Profiling candidate rows across temperatures...")
    candidates = standard_row_sample(module.geometry, 12)
    plan = plan_temperature_aware_attack(
        module, BANK, candidates, (50.0, 65.0, 80.0, 90.0), pattern)
    print(f"    softest point: row {plan.victim_row} at "
          f"{plan.temperature_c:.0f} degC (HCfirst {plan.hcfirst}; "
          f"{plan.hammer_reduction * 100:.0f}% below the uninformed "
          f"baseline of {plan.baseline_hcfirst})")

    print("[4] Massaging the victim page onto the target row...")
    allocator = PageAllocator(sysmap)
    outcome = massage_victim_onto_row(
        allocator, bank=BANK, row=plan.victim_row % sysmap.rows)
    landed = sysmap.decompose(sysmap.frame_base(outcome.victim_frame))
    print(f"    victim frame {outcome.victim_frame} -> bank {landed.bank}, "
          f"row {landed.row} (sprayed {outcome.sprayed_frames} frames)")

    print("[5] Heating the chamber and hammering...")
    chamber = TemperatureController(SeedSequenceTree(3, "attack-chamber"))
    session = SoftMCSession(module, chamber=chamber)
    reached = session.set_temperature(plan.temperature_c)
    session.install_pattern(BANK, plan.victim_row, pattern)
    hammers = min(int(plan.hcfirst * 1.3), 400_000)
    session.hammer_double_sided(BANK, plan.victim_row, hammers)
    flips = session.collect_flips(BANK, plan.victim_row)
    print(f"    {hammers} hammers at {reached:.1f} degC -> "
          f"{len(flips)} bit flip(s) in the victim's row")
    tester = HammerTester(module)
    check = tester.ber_test(BANK, plan.victim_row, pattern,
                            hammer_count=hammers,
                            temperature_c=50.0)
    print(f"    the same attack at 50 degC: {check.count(0)} flip(s) — "
          "temperature targeting paid off"
          if check.count(0) < len(flips) else
          "    (this row flips at 50 degC too)")


if __name__ == "__main__":
    main()
