#!/usr/bin/env python
"""Temperature sensitivities in action (Section 5 + Attack Improvements 1-2).

* Sweeps one module across 50-90 degC and prints the per-row BER trend.
* Plans a temperature-aware attack: the informed attacker picks the
  (row, temperature) operating point with the lowest HCfirst.
* Arms a temperature-*triggered* attack from a cell that only flips at or
  above a target temperature.
"""

import numpy as np

from repro import HammerTester, pattern_by_name, spec_by_id, standard_row_sample
from repro.attacks import TemperatureTrigger, plan_temperature_aware_attack

BANK = 0
TEMPERATURES = (50.0, 60.0, 70.0, 80.0, 90.0)


def main() -> None:
    module = spec_by_id("A1").instantiate()
    pattern = pattern_by_name("rowstripe")
    tester = HammerTester(module)
    rows = standard_row_sample(module.geometry, 40)

    print("BER vs temperature (150K hammers, mean flips/row):")
    for temp in TEMPERATURES:
        counts = [tester.ber_test(BANK, row, pattern,
                                  temperature_c=temp).count(0)
                  for row in rows]
        bar = "#" * int(np.mean(counts) * 4)
        print(f"  {temp:5.1f} degC: {np.mean(counts):6.2f} {bar}")

    print("\nAttack Improvement 1: temperature-aware targeting")
    plan = plan_temperature_aware_attack(module, BANK, rows[:16],
                                         TEMPERATURES, pattern)
    print(f"  uninformed: row {plan.baseline_row} at 50 degC -> "
          f"HCfirst {plan.baseline_hcfirst}")
    print(f"  informed:   row {plan.victim_row} at "
          f"{plan.temperature_c:.0f} degC -> HCfirst {plan.hcfirst}")
    print(f"  hammer-count reduction: {plan.hammer_reduction * 100:.0f}%")

    print("\nAttack Improvement 2: temperature-triggered attack")
    trigger = TemperatureTrigger.arm(module, BANK, rows, pattern,
                                     target_temperature_c=80.0,
                                     temperatures_c=TEMPERATURES,
                                     mode="at-or-above")
    print(f"  armed on victim row {trigger.victim_row} "
          f"(fires at >= {trigger.target_temperature_c:.0f} degC)")
    for temp in (50.0, 70.0, 80.0, 90.0):
        fired = trigger.fires(temp)
        print(f"  chip at {temp:.0f} degC -> trigger "
              f"{'FIRES' if fired else 'silent'}")


if __name__ == "__main__":
    main()
