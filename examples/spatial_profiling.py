#!/usr/bin/env python
"""Spatial variation: mapping recovery, row variation, fast profiling.

* Reverse-engineers the module's logical-to-physical row mapping from
  single-sided hammer experiments (Section 4.2's methodology).
* Measures per-row HCfirst variation (Fig. 11 / Obsv. 12).
* Uses the subarray-sampling profiler (Defense Improvement 2) to estimate
  the module's worst-case HCfirst an order of magnitude faster, then
  validates against held-out subarrays.
"""

import numpy as np

from repro import (
    HammerTester,
    pattern_by_name,
    reverse_engineer_mapping,
    spec_by_id,
    standard_row_sample,
)
from repro.analysis import percentile_markers
from repro.defenses import SubarraySamplingProfiler

BANK = 0


def main() -> None:
    module = spec_by_id("C0").instantiate()
    pattern = pattern_by_name("rowstripe")

    print("Reverse engineering the row mapping (single-sided hammering)...")
    window = list(range(512, 512 + 16))  # aligned to the mapping block
    inferred = reverse_engineer_mapping(module, BANK, window)
    truth = [module.to_physical(r) for r in inferred.order]
    print(f"  inferred physical order of logical rows {window[0]}..."
          f"{window[-1]}: {inferred.order}")
    print(f"  matches device mapping ({type(module.mapping).__name__}): "
          f"{inferred.matches(module)}  (physical: {truth})")

    print("\nPer-row HCfirst variation at 75 degC (Fig. 11):")
    tester = HammerTester(module)
    rows = standard_row_sample(module.geometry, 60)
    values = np.array([
        hc for row in rows
        if (hc := tester.hcfirst(BANK, row, pattern, temperature_c=75.0))
    ], dtype=float)
    markers = percentile_markers(values, percentiles=(90, 95, 99))
    print(f"  {values.size} vulnerable rows, min HCfirst "
          f"{values.min() / 1000:.1f}K")
    for p in (99, 95, 90):
        print(f"  {p}% of rows >= {markers[f'P{p}'] / values.min():.2f}x "
              "the minimum")

    print("\nDefense Improvement 2: subarray-sampling profiler")
    profiler = SubarraySamplingProfiler(module, pattern)
    estimate = profiler.estimate(n_subarrays=4, rows_per_subarray=24)
    print(f"  sampled subarrays {estimate.sampled_subarrays} of "
          f"{estimate.total_subarrays} -> {estimate.speedup:.0f}x faster "
          f"({estimate.tests_run} HCfirst searches)")
    print(f"  predicted module worst case: "
          f"{estimate.predicted_module_min / 1000:.1f}K hammers")
    holdout = [s for s in range(estimate.total_subarrays)
               if s not in estimate.sampled_subarrays][:3]
    validation = profiler.validate(estimate, holdout, rows_per_subarray=24)
    print(f"  held-out subarrays {holdout}: min "
          f"{validation['holdout_min'] / 1000:.1f}K, prediction error "
          f"{validation['relative_error'] * 100:.0f}%, narrowed-search "
          f"coverage {validation['window_coverage'] * 100:.0f}%")


if __name__ == "__main__":
    main()
