#!/usr/bin/env python
"""Aggressor active time: attack amplification vs scheduler defense.

Section 6 shows RowHammer worsens the longer an aggressor row stays open.
Attack Improvement 3 exploits this on systems with fixed timings by
issuing extra column READs per activation; Defense Improvement 5 blunts it
with a memory-controller row-buffer policy that caps every row's open
time.
"""

from repro import pattern_by_name, spec_by_id, standard_row_sample
from repro.attacks import ActiveTimeAmplification
from repro.defenses import ActiveTimeCap

BANK = 0


def main() -> None:
    module = spec_by_id("D0").instantiate()
    pattern = pattern_by_name("checkered")
    victim = standard_row_sample(module.geometry, 16)[4]
    timing = module.timing

    print(f"Module {module.module_id} ({module.profile.name}), victim row "
          f"{victim}, nominal tAggOn = tRAS = {timing.tRAS} ns\n")

    print("Attack Improvement 3: stretching tAggOn with column reads")
    attack = ActiveTimeAmplification(module, BANK)
    print(f"{'reads':>6} {'tAggOn':>9} {'flips':>6} {'BER gain':>9} "
          f"{'HCfirst':>9} {'reduction':>10}")
    for reads in (0, 5, 10, 15, 25):
        outcome = attack.evaluate(victim, pattern, reads)
        print(f"{reads:>6} {outcome.t_on_ns:>7.1f}ns "
              f"{outcome.flips:>6} {outcome.ber_gain:>8.1f}x "
              f"{str(outcome.hcfirst):>9} "
              f"{outcome.hcfirst_reduction * 100:>8.0f}%")

    print("\nDefense Improvement 5: scheduler caps row active time at tRAS")
    cap = ActiveTimeCap(module, bank=BANK)
    amplified = attack.evaluate(victim, pattern, reads_per_activation=15)
    report = cap.evaluate(victim, pattern,
                          requested_t_on_ns=amplified.t_on_ns)
    print(f"  attacker requests tAggOn = {report.requested_t_on_ns:.1f} ns, "
          f"policy grants {report.capped_t_on_ns:.1f} ns")
    print(f"  flips: {report.flips_uncapped} -> {report.flips_capped} "
          f"({report.ber_reduction * 100:.0f}% reduction)")
    print(f"  HCfirst: {report.hcfirst_uncapped} -> {report.hcfirst_capped}")


if __name__ == "__main__":
    main()
