#!/usr/bin/env python
"""Row-buffer policies: the full cost/benefit of Defense Improvement 5.

The memory controller is the one agent that can bound every row's active
time (Obsv. 8 makes long active times dangerous; on-DRAM-die defenses
cannot track them).  This example replays a benign Zipf workload through
open-page, capped-open-page and closed-page policies and shows, side by
side, what each policy costs in row hits / latency and what it buys in
attack suppression.
"""

from repro import pattern_by_name, spec_by_id, standard_row_sample
from repro.dram.timing import DDR4_2400
from repro.memctrl import (
    CappedOpenPagePolicy,
    ClosedPagePolicy,
    OpenPagePolicy,
    compare_policies,
    zipf_stream,
)
from repro.testing.hammer import HammerTester


def main() -> None:
    timing = DDR4_2400
    policies = [
        OpenPagePolicy(),
        CappedOpenPagePolicy(timing.tRAS * 2),
        CappedOpenPagePolicy(timing.tRAS),
        ClosedPagePolicy(),
    ]
    benign = zipf_stream(4000, alpha=1.3, seed=11)

    module = spec_by_id("A0").instantiate()
    module.temperature_c = 50.0
    tester = HammerTester(module)
    pattern = pattern_by_name("rowstripe")
    victims = standard_row_sample(module.geometry, 12)

    print("Benign workload: 4000 Zipf(1.3) requests; attacker: double-sided "
          "hammer\nwith reads stretching tAggOn to the policy's limit.\n")
    print(f"{'policy':<20} {'hit rate':>9} {'avg latency':>12} "
          f"{'attacker tAggOn':>16} {'attack flips':>13}")
    stats = compare_policies(timing, policies, benign)
    for policy, stat in zip(policies, stats):
        t_on = min(max(policy.max_row_open_ns(64e6), timing.tRAS), 154.5)
        flips = sum(tester.ber_test(0, v, pattern, t_on_ns=t_on).count(0)
                    for v in victims)
        label = policy.name
        if isinstance(policy, CappedOpenPagePolicy):
            label += f" ({policy.cap_ns:.0f}ns)"
        print(f"{label:<20} {stat.hit_rate * 100:>7.1f}% "
              f"{stat.avg_latency_ns:>10.1f}ns {t_on:>14.1f}ns "
              f"{flips:>13d}")

    print("\nA tRAS-capped open page keeps the open-page hit rate while "
          "denying the\nattacker any active-time amplification — the "
          "paper's Improvement 5.")


if __name__ == "__main__":
    main()
