#!/usr/bin/env python
"""Scrape a campaign's telemetry and evaluate PromQL-style queries.

Shows the telemetry plane end to end without needing a running
Prometheus:

1. run a short seeded campaign under live recorders,
2. render the registry as Prometheus text exposition 0.0.4 — the same
   bytes `deeprh serve --metrics-port` serves over HTTP and the
   `metrics` op returns on the Unix socket,
3. parse the exposition back and evaluate the queries an operator
   would put on a dashboard (hit ratios, retry pressure, histogram
   quantile bounds).

Every query below has a PromQL twin in the comment above it — the
exposition is standard, so against a real scrape target the PromQL
works verbatim.
"""

from repro.core.config import QUICK
from repro.obs import MetricsRegistry, Tracer, observed
from repro.obs.expo import parse_prometheus, render_prometheus

CONFIG = QUICK.scaled(rows_per_region=8, modules_per_manufacturer=1,
                      temperatures_c=(50.0, 85.0),
                      hcfirst_repetitions=1, wcdp_sample_rows=2)


def main() -> None:
    from repro.runner import CampaignRunner

    tracer, metrics = Tracer(), MetricsRegistry()
    with observed(tracer=tracer, metrics=metrics):
        outcome = CampaignRunner(CONFIG).run("temperature")
    print(f"campaign ok: {outcome.ok}")

    # The scrape body a Prometheus server would ingest.  Service gauges
    # (governor rung, admission, latency) merge in the same way via
    # render_prometheus(..., extra_gauges=...) inside `deeprh serve`.
    exposition = render_prometheus(metrics.to_dict())
    lines = exposition.splitlines()
    print(f"\nscrape exposition: {len(lines)} line(s), showing head:")
    for line in lines[:12]:
        print(f"  {line}")

    samples = parse_prometheus(exposition)

    def q(name, default=0.0):
        return samples.get(name, default)

    # PromQL: deeprh_oracle_cache_hit_total
    #         / (deeprh_oracle_cache_hit_total + deeprh_oracle_cache_miss_total)
    hits = q("deeprh_oracle_cache_hit_total")
    misses = q("deeprh_oracle_cache_miss_total")
    ratio = hits / (hits + misses) if hits + misses else 0.0
    print(f"\noracle cache hit ratio: {ratio * 100:.1f}% "
          f"({hits:.0f} hit / {misses:.0f} miss)")

    # PromQL: rate(deeprh_retry_retries_total[5m])
    #         / rate(deeprh_retry_calls_total[5m])
    units = q("deeprh_retry_calls_total")
    retries = q("deeprh_retry_retries_total")
    per_unit = retries / units if units else 0.0
    print(f"retry pressure: {per_unit:.3f} retries/unit "
          f"({retries:.0f} over {units:.0f} unit(s))")

    # PromQL: rate(deeprh_oracle_grid_solves_total[5m])
    #         / rate(deeprh_campaign_modules_completed_total[5m])
    solves = q("deeprh_oracle_grid_solves_total")
    modules = q("deeprh_campaign_modules_completed_total")
    per_module = solves / modules if modules else 0.0
    print(f"oracle load: {per_module:.1f} grid solves/module "
          f"({solves:.0f} over {modules:.0f} module(s))")

    redo = render_prometheus(metrics.to_dict())
    print(f"\ndeterministic exposition: {redo == exposition}")


if __name__ == "__main__":
    main()
