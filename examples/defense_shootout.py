#!/usr/bin/env python
"""Defense shoot-out: PARA vs Graphene vs BlockHammer vs RFM vs TRR.

Replays the same double-sided attack through each mechanism on the same
module and compares protection and cost, then prints Defense
Improvement 1's variable-threshold provisioning table (Obsv. 12: configure
the worst-case threshold for the vulnerable 5 % of rows only).
"""

from repro import SeedSequenceTree, pattern_by_name, spec_by_id, standard_row_sample
from repro.defenses import (
    BlockHammer,
    DefenseHarness,
    Graphene,
    PARA,
    RefreshManagement,
    para_refresh_probability,
)
from repro.defenses.costs import ACTS_PER_WINDOW, improvement1_summary

BANK = 0
ATTACK_HAMMERS = 150_000
PROTECT_HCFIRST = 20_000  # defense provisioning threshold


def main() -> None:
    module = spec_by_id("B1").instantiate()
    pattern = pattern_by_name("checkered")
    victims = standard_row_sample(module.geometry, 12)[:6]
    rows = module.geometry.rows_per_bank
    tree = SeedSequenceTree(11, "defense-demo")

    defenses = {
        "none": None,
        "PARA": PARA(para_refresh_probability(PROTECT_HCFIRST), tree, rows),
        "Graphene": Graphene(PROTECT_HCFIRST, rows, ACTS_PER_WINDOW),
        "BlockHammer": BlockHammer(PROTECT_HCFIRST),
        "RFM": RefreshManagement(raaimt=PROTECT_HCFIRST // 8,
                                 rows_per_bank=rows, tree=tree),
    }

    print(f"Attack: {ATTACK_HAMMERS} double-sided hammers per victim, "
          f"{len(victims)} victims on module {module.module_id}\n")
    print(f"{'defense':>12} {'victims flipped':>16} {'refreshes':>10} "
          f"{'attacker loss':>14}")
    for name, defense in defenses.items():
        flipped = 0
        refreshes = 0
        loss = 0.0
        for victim in victims:
            outcome = DefenseHarness(module, defense, BANK).run_double_sided(
                victim, pattern, ATTACK_HAMMERS)
            flipped += int(not outcome.protected)
            refreshes += outcome.refreshes_issued
            loss = max(loss, outcome.throughput_loss)
        print(f"{name:>12} {flipped:>8}/{len(victims):<7} {refreshes:>10} "
              f"{loss * 100:>12.0f}%")

    print("\nDefense Improvement 1: variable-threshold provisioning "
          "(5% rows at HCfirst, 95% at 2x HCfirst)")
    print(f"{'defense':>12} {'uniform cost':>13} {'variable cost':>14} "
          f"{'saving':>8}")
    for name, report in improvement1_summary(PROTECT_HCFIRST).items():
        unit = "% slowdown" if name == "para" else "% die area"
        print(f"{name:>12} {report.uniform_cost:>9.3f}{unit:<4} "
              f"{report.variable_cost:>10.3f}{unit:<4} "
              f"{report.saving_pct:>6.1f}%")


if __name__ == "__main__":
    main()
