#!/usr/bin/env python
"""Quickstart: hammer a simulated DDR4 module and observe bit flips.

Walks the full testbed once, end to end:

1. instantiate a cataloged module (Mfr. A DIMM ``A0``),
2. settle the thermal chamber at 75 degC (closed-loop PID),
3. install the worst-case data pattern around a victim row,
4. run a double-sided hammer through the SoftMC command path,
5. read the victim back and print its bit flips,
6. binary-search the victim's HCfirst.
"""

from repro import (
    HammerTester,
    SeedSequenceTree,
    SoftMCSession,
    TemperatureController,
    pattern_by_name,
    spec_by_id,
)

BANK = 0
VICTIM = 4096
HAMMERS = 250_000  # fits the retention-safe window (~25 ms of DRAM time)


def main() -> None:
    spec = spec_by_id("A0")
    print(f"Module {spec.module_id}: {spec.standard} {spec.density_gb}Gb "
          f"{spec.organization}, {spec.n_chips} chips by {spec.chip_maker}")
    module = spec.instantiate()

    # 2. Thermal chamber: heater pads + thermocouple + PID (Fig. 2's setup).
    chamber = TemperatureController(SeedSequenceTree(7, "chamber"))
    session = SoftMCSession(module, chamber=chamber)
    reached = session.set_temperature(75.0)
    print(f"Chamber settled at {reached:.2f} degC "
          f"(+/-0.1 degC tolerance, {chamber.elapsed_s:.0f} s simulated)")

    # 3. Pick a vulnerable victim: scan a few candidates for the lowest
    #    HCfirst (rows vary wildly — Obsv. 12), then install the pattern.
    pattern = pattern_by_name("rowstripe")
    tester = HammerTester(module)
    candidates = range(VICTIM, VICTIM + 24)
    victim = min(candidates,
                 key=lambda row: tester.hcfirst(BANK, row, pattern) or 2**30)
    session.install_pattern(BANK, victim, pattern)

    # 4. Double-sided hammer through the command-accurate SoftMC path.
    aggressors = session.double_sided_aggressors(BANK, victim)
    print(f"Hammering aggressors {aggressors} around victim {victim} "
          f"({HAMMERS} hammers = {2 * HAMMERS} activations)...")
    result = session.hammer_double_sided(BANK, victim, HAMMERS)
    print(f"Attack took {result.elapsed_ns / 1e6:.1f} ms of DRAM time "
          f"({result.activations_issued} activations)")

    # 5. Read back.
    flips = session.collect_flips(BANK, victim)
    print(f"Victim row shows {len(flips)} bit flips:")
    for flip in flips[:8]:
        print(f"  chip {flip.chip:2d}  col {flip.col:4d}  bit {flip.bit}  "
              f"{flip.expected} -> {flip.got}")
    if len(flips) > 8:
        print(f"  ... and {len(flips) - 8} more")

    # 6. HCfirst via the paper's binary search.
    hcfirst = tester.hcfirst(BANK, victim, pattern, temperature_c=75.0)
    print(f"HCfirst of row {victim} at 75 degC: "
          f"{hcfirst if hcfirst else 'not vulnerable (>512K)'} hammers")


if __name__ == "__main__":
    main()
